#include "src/fi/injectors.h"

#include <bit>

#include "src/common/metrics_registry.h"

namespace gras::fi {
namespace {

// Injection-lifecycle telemetry (docs/observability.md): arms = injectors
// constructed, injections = flips landed, clips = multi-bit flips truncated
// at a word/byte boundary, retries = trigger cycles with nothing allocated,
// give_ups = windows that closed with nothing allocated, masked = software
// sites consumed without a register source to flip. All sites are rare
// (per-sample, not per-cycle), so plain registry counters are fine.
telemetry::Counter& c_arms() {
  static telemetry::Counter& c = telemetry::counter("fi.arms");
  return c;
}
telemetry::Counter& c_injections() {
  static telemetry::Counter& c = telemetry::counter("fi.injections");
  return c;
}
telemetry::Counter& c_clips() {
  static telemetry::Counter& c = telemetry::counter("fi.clips");
  return c;
}
telemetry::Counter& c_retries() {
  static telemetry::Counter& c = telemetry::counter("fi.retries");
  return c;
}
telemetry::Counter& c_give_ups() {
  static telemetry::Counter& c = telemetry::counter("fi.give_ups");
  return c;
}
telemetry::Counter& c_masked() {
  static telemetry::Counter& c = telemetry::counter("fi.masked");
  return c;
}

}  // namespace

MicroarchInjector::MicroarchInjector(Structure target, std::uint64_t trigger_cycle,
                                     std::uint64_t window_end, Rng rng, unsigned width,
                                     std::uint32_t launch_index)
    : target_(target),
      trigger_(trigger_cycle),
      window_end_(window_end),
      rng_(rng),
      width_(width == 0 ? 1 : width) {
  record_.level = FaultLevel::Microarch;
  record_.structure = target;
  record_.launch = launch_index;
  c_arms().add();
}

std::uint64_t MicroarchInjector::next_trigger() const {
  if (injected_ || gave_up_) return ~std::uint64_t{0};
  return trigger_;
}

void MicroarchInjector::on_cycle(sim::Gpu& gpu, std::uint64_t cycle) {
  if (injected_ || gave_up_ || cycle < trigger_) return;
  if (cycle > window_end_) {
    gave_up_ = true;  // kernel window elapsed with nothing allocated
    c_give_ups().add();
    return;
  }
  inject(gpu, cycle);
  if (injected_) {
    c_injections().add();
    if (record_.width < width_) c_clips().add();
  } else {
    trigger_ = cycle + 1;  // retry next cycle
    c_retries().add();
  }
}

void MicroarchInjector::inject(sim::Gpu& gpu, std::uint64_t cycle) {
  const std::uint32_t sms = gpu.num_sms();
  record_.trigger = cycle;
  switch (target_) {
    case Structure::RF: {
      std::uint64_t total_cells = 0;
      for (std::uint32_t s = 0; s < sms; ++s) {
        total_cells += gpu.sm(s).regfile().allocated_count();
      }
      if (total_cells == 0) return;
      std::uint64_t k = rng_.below(total_cells * 32);
      const unsigned bit = static_cast<unsigned>(k % 32);
      std::uint64_t cell_k = k / 32;
      for (std::uint32_t s = 0; s < sms; ++s) {
        sim::RegFile& rf = gpu.sm(s).regfile();
        if (cell_k < rf.allocated_count()) {
          const std::uint32_t cell = rf.allocated_cell(static_cast<std::uint32_t>(cell_k));
          // Adjacent multi-bit flips stay within the 32-bit word.
          unsigned flipped = 0;
          for (unsigned w = 0; w < width_ && bit + w < 32; ++w, ++flipped) {
            rf.flip_bit(std::uint64_t{cell} * 32 + bit + w);
          }
          record_.sm = s;
          record_.site = cell;
          record_.bit = static_cast<std::uint8_t>(bit);
          record_.width = static_cast<std::uint8_t>(flipped);
          injected_ = true;
          return;
        }
        cell_k -= rf.allocated_count();
      }
      return;
    }
    case Structure::SMEM: {
      std::uint64_t total_bytes = 0;
      for (std::uint32_t s = 0; s < sms; ++s) {
        total_bytes += gpu.sm(s).shared_mem().allocated_bytes();
      }
      if (total_bytes == 0) return;
      std::uint64_t k = rng_.below(total_bytes * 8);
      const unsigned bit = static_cast<unsigned>(k % 8);
      std::uint64_t byte_k = k / 8;
      for (std::uint32_t s = 0; s < sms; ++s) {
        sim::SharedMem& sm = gpu.sm(s).shared_mem();
        if (byte_k < sm.allocated_bytes()) {
          const std::uint32_t byte = sm.allocated_byte(static_cast<std::uint32_t>(byte_k));
          unsigned flipped = 0;
          for (unsigned w = 0; w < width_ && bit + w < 8; ++w, ++flipped) {
            sm.flip_bit(std::uint64_t{byte} * 8 + bit + w);
          }
          record_.sm = s;
          record_.site = byte;
          record_.bit = static_cast<std::uint8_t>(bit);
          record_.width = static_cast<std::uint8_t>(flipped);
          injected_ = true;
          return;
        }
        byte_k -= sm.allocated_bytes();
      }
      return;
    }
    case Structure::L1D:
    case Structure::L1T: {
      const std::uint32_t s = static_cast<std::uint32_t>(rng_.below(sms));
      sim::Cache& cache =
          target_ == Structure::L1D ? gpu.sm(s).l1d() : gpu.sm(s).l1t();
      const std::uint64_t bit = rng_.below(cache.data_bit_count());
      unsigned flipped = 0;
      for (unsigned w = 0; w < width_ && bit + w < cache.data_bit_count(); ++w, ++flipped) {
        cache.flip_data_bit(bit + w);
      }
      record_.sm = s;
      record_.site = bit / 32;
      record_.bit = static_cast<std::uint8_t>(bit % 32);
      record_.width = static_cast<std::uint8_t>(flipped);
      injected_ = true;
      return;
    }
    case Structure::L2: {
      const std::uint64_t bit = rng_.below(gpu.l2().data_bit_count());
      unsigned flipped = 0;
      for (unsigned w = 0; w < width_ && bit + w < gpu.l2().data_bit_count(); ++w, ++flipped) {
        gpu.l2().flip_data_bit(bit + w);
      }
      record_.sm = 0;
      record_.site = bit / 32;
      record_.bit = static_cast<std::uint8_t>(bit % 32);
      record_.width = static_cast<std::uint8_t>(flipped);
      injected_ = true;
      return;
    }
  }
}

SoftwareInjector::SoftwareInjector(SvfMode mode, std::uint64_t target_index, Rng rng,
                                   std::uint64_t start_count, std::uint32_t launch_index)
    : mode_(mode), target_(target_index), rng_(rng), counter_(start_count) {
  record_.level = FaultLevel::Software;
  record_.mode = mode;
  record_.trigger = target_index;
  record_.launch = launch_index;
  c_arms().add();
}

bool SoftwareInjector::counts(const isa::Instr& ins) const {
  if (mode_ == SvfMode::DstLoad) return ins.is_load();
  return true;  // hook is only invoked for GPR-writing instructions
}

int SoftwareInjector::select_lane(std::uint32_t exec_mask) const {
  const std::uint32_t lanes = static_cast<std::uint32_t>(std::popcount(exec_mask));
  if (target_ < counter_ || target_ >= counter_ + lanes) return -1;
  std::uint64_t skip = target_ - counter_;
  std::uint32_t mask = exec_mask;
  while (skip-- > 0) mask &= mask - 1;
  return std::countr_zero(mask);
}

void SoftwareInjector::on_pre_exec(sim::Sm& sm, std::uint32_t warp_slot,
                                   const isa::Instr& ins, std::uint32_t exec_mask) {
  if (injected_ || (mode_ != SvfMode::SrcOnce && mode_ != SvfMode::SrcReuse)) return;
  if (!counts(ins)) return;
  const int lane = select_lane(exec_mask);
  if (lane < 0) return;
  // Pick a GPR source operand; a target with no register sources stays
  // un-injected (masked), which slightly understates source-mode SVF and is
  // documented in DESIGN.md.
  const isa::Operand* sources[3] = {&ins.a, &ins.b, &ins.c};
  std::uint8_t regs[3];
  std::size_t count = 0;
  for (const isa::Operand* op : sources) {
    if (op->is_gpr() && op->value != isa::kRegRZ) {
      regs[count++] = static_cast<std::uint8_t>(op->value);
    }
  }
  injected_ = true;  // the sampled site is consumed either way
  if (count == 0) {
    c_masked().add();
    return;
  }
  c_injections().add();
  const std::uint8_t reg = regs[rng_.below(count)];
  const unsigned bit = static_cast<unsigned>(rng_.below(32));
  const std::uint32_t cell =
      sm.rf_cell_index(sm.warp(warp_slot), static_cast<std::uint32_t>(lane), reg);
  sm.regfile().flip_bit(std::uint64_t{cell} * 32 + bit);
  record_.sm = sm.sm_id();
  record_.site = cell;
  record_.bit = static_cast<std::uint8_t>(bit);
  record_.width = 1;
  if (mode_ == SvfMode::SrcOnce) {
    pending_restore_ = true;
    restore_cell_ = cell;
    restore_bit_ = bit;
    restore_sm_ = &sm;
  }
}

void SoftwareInjector::on_gpr_retire(sim::Sm& sm, std::uint32_t warp_slot,
                                     const isa::Instr& ins, std::uint32_t exec_mask) {
  if (pending_restore_) {
    // SrcOnce: the corrupted source value was consumed by exactly this
    // instruction; restore the stored register unless the instruction
    // overwrote it (then the flip is dead anyway — restoring would corrupt).
    sim::WarpExec& warp = restore_sm_->warp(warp_slot);
    bool overwritten = false;
    if (ins.dst != isa::kRegRZ) {
      for (std::uint32_t lane = 0; lane < 32; ++lane) {
        if ((exec_mask >> lane) & 1) {
          if (restore_sm_->rf_cell_index(warp, lane, ins.dst) == restore_cell_) {
            overwritten = true;
            break;
          }
        }
      }
    }
    if (!overwritten) {
      restore_sm_->regfile().flip_bit(std::uint64_t{restore_cell_} * 32 + restore_bit_);
    }
    pending_restore_ = false;
    (void)sm;
  }
  if (injected_) return;
  if (mode_ != SvfMode::Dst && mode_ != SvfMode::DstLoad) {
    // Source modes still need the counter advanced in the same space.
    if (counts(ins)) counter_ += static_cast<std::uint32_t>(std::popcount(exec_mask));
    return;
  }
  if (!counts(ins)) return;
  const int lane = select_lane(exec_mask);
  if (lane >= 0) {
    const unsigned bit = static_cast<unsigned>(rng_.below(32));
    const std::uint32_t cell = sm.rf_cell_index(
        sm.warp(warp_slot), static_cast<std::uint32_t>(lane), ins.dst);
    sm.regfile().flip_bit(std::uint64_t{cell} * 32 + bit);
    record_.sm = sm.sm_id();
    record_.site = cell;
    record_.bit = static_cast<std::uint8_t>(bit);
    record_.width = 1;
    injected_ = true;
    c_injections().add();
  }
  counter_ += static_cast<std::uint32_t>(std::popcount(exec_mask));
}

}  // namespace gras::fi
