// Fault model types shared by both injection layers.
//
// Fault model (paper §II-A): single-bit flips, uniformly distributed over
// the fault space of the chosen layer:
//  * microarchitecture level (gpuFI-4 style): any bit of a hardware
//    structure at any cycle of the target kernel's execution window;
//  * software level (NVBitFI style): any bit of the destination register of
//    any dynamic GPR-writing instruction of the target kernel.
#pragma once

#include <cstdint>
#include <string>

namespace gras::fi {

/// Hardware structures targeted by microarchitecture-level injection — the
/// five structures gpuFI-4 supports (paper §II-B).
enum class Structure : std::uint8_t { RF, SMEM, L1D, L1T, L2 };

inline constexpr Structure kAllStructures[] = {Structure::RF, Structure::SMEM,
                                               Structure::L1D, Structure::L1T,
                                               Structure::L2};

const char* structure_name(Structure s);

/// Fault-effect classes (paper §II-A).
enum class Outcome : std::uint8_t { Masked, SDC, Timeout, DUE };

const char* outcome_name(Outcome o);

/// Software-level injection instruction groups.
enum class SvfMode : std::uint8_t {
  Dst,      ///< NVBitFI default: destination register of any GP instruction
  DstLoad,  ///< destination register of load instructions only (SVF-LD)
  /// Extension (paper §V-B): source-register fault affecting only the one
  /// consuming instruction — the flawed model the paper critiques...
  SrcOnce,
  /// ...and the proposed fix: the source-register fault persists for every
  /// subsequent reader until the register is rewritten (the register-reuse
  /// analyzer made operational).
  SrcReuse,
};

const char* svf_mode_name(SvfMode m);

}  // namespace gras::fi
