// Fault model types shared by both injection layers.
//
// Fault model (paper §II-A): single-bit flips, uniformly distributed over
// the fault space of the chosen layer:
//  * microarchitecture level (gpuFI-4 style): any bit of a hardware
//    structure at any cycle of the target kernel's execution window;
//  * software level (NVBitFI style): any bit of the destination register of
//    any dynamic GPR-writing instruction of the target kernel.
#pragma once

#include <cstdint>
#include <string>

namespace gras::fi {

/// Hardware structures targeted by microarchitecture-level injection — the
/// five structures gpuFI-4 supports (paper §II-B).
enum class Structure : std::uint8_t { RF, SMEM, L1D, L1T, L2 };

inline constexpr Structure kAllStructures[] = {Structure::RF, Structure::SMEM,
                                               Structure::L1D, Structure::L1T,
                                               Structure::L2};

const char* structure_name(Structure s);

/// Fault-effect classes (paper §II-A).
enum class Outcome : std::uint8_t { Masked, SDC, Timeout, DUE };

const char* outcome_name(Outcome o);

/// Which injection layer produced a fault (None marks "no fault landed",
/// e.g. a profiling hook or an RF/SMEM attempt that expired unallocated).
enum class FaultLevel : std::uint8_t { None, Microarch, Software };

const char* fault_level_name(FaultLevel l);

/// Software-level injection instruction groups.
enum class SvfMode : std::uint8_t {
  Dst,      ///< NVBitFI default: destination register of any GP instruction
  DstLoad,  ///< destination register of load instructions only (SVF-LD)
  /// Extension (paper §V-B): source-register fault affecting only the one
  /// consuming instruction — the flawed model the paper critiques...
  SrcOnce,
  /// ...and the proposed fix: the source-register fault persists for every
  /// subsequent reader until the register is rewritten (the register-reuse
  /// analyzer made operational).
  SrcReuse,
};

const char* svf_mode_name(SvfMode m);

/// Provenance of one injected fault: where the flip landed and when. Filled
/// in by the injectors at injection time and carried through SampleResult
/// into the campaign journal, so any journaled sample can be located (and
/// replayed) without re-deriving its RNG draws.
///
/// Site conventions by level/structure:
///  * RF (and software level): `site` is the physical register-cell index in
///    SM `sm`'s register file; `bit` is the first flipped bit of the 32-bit
///    word.
///  * SMEM: `site` is the byte index in SM `sm`'s shared memory; `bit` is
///    the first flipped bit of that byte.
///  * L1D/L1T/L2: `site` is the 32-bit word index into the cache's data
///    array (`sm` is 0 for the shared L2); `bit` is the first flipped bit of
///    that word, though a multi-bit flip may run past it into the next word
///    (caches clip only at the end of the data array).
///
/// `trigger` is the injection cycle (microarchitecture level) or the global
/// dynamic-instruction index (software level). `width` counts the bits that
/// actually flipped after boundary clipping; 0 means the fault consumed its
/// sampled site without flipping anything (e.g. a source-mode target with no
/// register operands).
struct FaultRecord {
  FaultLevel level = FaultLevel::None;
  Structure structure = Structure::RF;  ///< valid when level == Microarch
  SvfMode mode = SvfMode::Dst;          ///< valid when level == Software
  std::uint32_t sm = 0;
  std::uint64_t site = 0;
  std::uint8_t bit = 0;
  std::uint8_t width = 0;
  std::uint64_t trigger = 0;
  std::uint32_t launch = 0;  ///< golden launch index of the owning kernel
};

}  // namespace gras::fi
