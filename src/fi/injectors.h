// The two fault injectors, implemented as simulator hooks.
//
// MicroarchInjector reproduces gpuFI-4's methodology (paper §II-B): a
// single-bit flip of a hardware structure at a uniformly random cycle of the
// target kernel's window. Caches are targeted across their whole data
// arrays (valid or not). Register file and shared memory faults are drawn
// uniformly from the *allocated* cells at the trigger cycle — the
// GPGPU-Sim-imposed restriction the derating factor corrects for.
//
// SoftwareInjector reproduces NVBitFI's methodology (paper §II-C): flip one
// bit of the destination register of a uniformly chosen dynamic GPR-writing
// (or load-only) thread instruction, immediately after it executes. The
// SrcOnce/SrcReuse modes implement the source-register variants discussed in
// §V-B (Fig. 12's register-reuse analyzer, made operational).
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/fi/fault.h"
#include "src/sim/gpu.h"

namespace gras::fi {

class MicroarchInjector final : public sim::FaultHook {
 public:
  /// Injects into `target` at `trigger_cycle` (global GPU cycle). When the
  /// target is RF/SMEM and nothing is allocated at the trigger, the attempt
  /// is retried every cycle until `window_end`; giving up leaves the fault
  /// un-injected (equivalent to hitting an unallocated cell: masked).
  ///
  /// `width` > 1 selects the multi-bit model the paper anticipates
  /// (§II-A): `width` *adjacent* bits of the same physical word/byte run
  /// flip together, matching beam-test observations that multi-bit upsets
  /// stay within one adjacent area and never span structures.
  ///
  /// `launch_index` is the golden launch index of the kernel launch whose
  /// cycle window [trigger_cycle, window_end] was sampled; it is copied into
  /// the provenance record as-is (the injector itself never needs it).
  MicroarchInjector(Structure target, std::uint64_t trigger_cycle,
                    std::uint64_t window_end, Rng rng, unsigned width = 1,
                    std::uint32_t launch_index = 0);

  void on_cycle(sim::Gpu& gpu, std::uint64_t cycle) override;
  std::uint64_t next_trigger() const override;

  bool injected() const noexcept override { return injected_; }
  Structure target() const noexcept { return target_; }
  /// Where the flip landed; `record().width == 0` until injection happens.
  const FaultRecord& record() const noexcept { return record_; }

 private:
  void inject(sim::Gpu& gpu, std::uint64_t cycle);

  Structure target_;
  std::uint64_t trigger_;
  std::uint64_t window_end_;
  Rng rng_;
  unsigned width_;
  bool injected_ = false;
  bool gave_up_ = false;
  FaultRecord record_;
};

class SoftwareInjector final : public sim::FaultHook {
 public:
  /// `target_index` is the global index (across the whole application run)
  /// of the dynamic thread instruction to corrupt, in the counting space of
  /// the mode (all GPR writers, or loads only). `start_count` pre-advances
  /// the dynamic-instruction counter; a replay that fast-forwards the
  /// fault-free launch prefix passes the golden count at the launch boundary
  /// where live timing simulation begins — the resume checkpoint, or the
  /// functional→timing handoff when the fast functional backend runs the
  /// prefix (its launches never invoke hooks) — so the counter stays aligned
  /// with the full-run counting space.
  /// `launch_index` is the golden launch index containing `target_index`
  /// (provenance only, as in MicroarchInjector).
  SoftwareInjector(SvfMode mode, std::uint64_t target_index, Rng rng,
                   std::uint64_t start_count = 0, std::uint32_t launch_index = 0);

  void on_pre_exec(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                   std::uint32_t exec_mask) override;
  void on_gpr_retire(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                     std::uint32_t exec_mask) override;

  bool injected() const noexcept override { return injected_; }
  /// Where the flip landed; `record().width == 0` until injection happens
  /// (and stays 0 for a consumed source-mode target with no GPR operands).
  const FaultRecord& record() const noexcept { return record_; }

  /// Re-bases the dynamic-instruction counter to `count` (the golden count at
  /// the point where live simulation resumes). Batched lanes use this: the
  /// hook is constructed before the batch's shared fault-free prefix runs,
  /// but only attached to the gpu after the lane's fork is restored, so the
  /// counter must be set to the fork's retired-instruction count rather than
  /// the launch-boundary count the constructor assumed.
  void rebase_counter(std::uint64_t count) noexcept { counter_ = count; }

 private:
  bool counts(const isa::Instr& ins) const;
  /// Lane of the target thread instruction inside this warp instruction, or
  /// -1 if the target is not in [counter, counter+popcount(exec)).
  int select_lane(std::uint32_t exec_mask) const;

  SvfMode mode_;
  std::uint64_t target_;
  Rng rng_;
  std::uint64_t counter_ = 0;
  bool injected_ = false;
  // SrcOnce restore state.
  bool pending_restore_ = false;
  std::uint32_t restore_cell_ = 0;
  unsigned restore_bit_ = 0;
  sim::Sm* restore_sm_ = nullptr;
  FaultRecord record_;
};

}  // namespace gras::fi
