#include "src/fi/fault.h"

namespace gras::fi {

const char* structure_name(Structure s) {
  switch (s) {
    case Structure::RF: return "RF";
    case Structure::SMEM: return "SMEM";
    case Structure::L1D: return "L1D";
    case Structure::L1T: return "L1T";
    case Structure::L2: return "L2";
  }
  return "?";
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Masked: return "Masked";
    case Outcome::SDC: return "SDC";
    case Outcome::Timeout: return "Timeout";
    case Outcome::DUE: return "DUE";
  }
  return "?";
}

const char* fault_level_name(FaultLevel l) {
  switch (l) {
    case FaultLevel::None: return "none";
    case FaultLevel::Microarch: return "microarch";
    case FaultLevel::Software: return "software";
  }
  return "?";
}

const char* svf_mode_name(SvfMode m) {
  switch (m) {
    case SvfMode::Dst: return "SVF";
    case SvfMode::DstLoad: return "SVF-LD";
    case SvfMode::SrcOnce: return "SVF-SRC1";
    case SvfMode::SrcReuse: return "SVF-REUSE";
  }
  return "?";
}

}  // namespace gras::fi
