// SCP — scalarProd (CUDA SDK): dot products of vector pairs.
//
// One CTA per pair; each thread accumulates a strided partial product, then
// a shared-memory tree reduction produces the pair's dot product. Inputs go
// through the read-only (texture) path, exercising the L1T structure. High
// arithmetic register pressure plus live shared memory make SCP a high-AVF
// workload, the other side of the paper's SCP-vs-VA trend flip.
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kPairs = 16;
constexpr std::uint32_t kElems = 512;   // per pair; multiple of the block size
constexpr std::uint32_t kBlock = 128;

constexpr char kAsm[] = R"(
.kernel scp_k1
.smem 512                        // one float per thread
.param a ptr
.param b ptr
.param out ptr
.param elems u32
    S2R R0, SR_CTAID.X           // pair index
    S2R R1, SR_TID.X
    S2R R2, SR_NTID.X
    IMUL R3, R0, c[elems]        // first element of this pair
    MOV R4, 0                    // accumulator (0.0f)
    MOV R5, R1                   // i = tid
loop:
    ISETP.GE P0, R5, c[elems]
    @P0 BRA loop_end
    IADD R6, R3, R5
    ISCADD R7, R6, c[a], 2
    LDT R8, [R7]
    ISCADD R9, R6, c[b], 2
    LDT R10, [R9]
    FFMA R4, R8, R10, R4
    IADD R5, R5, R2
    BRA loop
loop_end:
    SHL R11, R1, 2               // smem slot = tid*4
    STS [R11], R4
    BAR
    SHR R12, R2, 1               // stride = ntid/2
red:
    ISETP.EQ P1, R12, RZ
    @P1 BRA red_end
    ISETP.LT P0, R1, R12
    IADD R13, R1, R12
    SHL R13, R13, 2
    @P0 LDS R14, [R13]
    @P0 LDS R15, [R11]
    @P0 FADD R14, R14, R15
    @P0 STS [R11], R14
    BAR
    SHR R12, R12, 1
    BRA red
red_end:
    ISETP.NE P2, R1, RZ
    @P2 EXIT
    LDS R16, [0]
    ISCADD R17, R0, c[out], 2
    STG [R17], R16
    EXIT
)";

class ScpApp final : public BenchApp {
 public:
  ScpApp() : BenchApp("scp") {
    add_kernels(kAsm);
    const std::uint32_t n = kPairs * kElems;
    std::vector<float> a(n), b(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      a[i] = detail::init_float(21, i, -8.0f, 8.0f);
      b[i] = detail::init_float(22, i, -8.0f, 8.0f);
    }
    add_buffer("a", n * 4, Role::Input, detail::pack_floats(a));
    add_buffer("b", n * 4, Role::Input, detail::pack_floats(b));
    add_buffer("out", kPairs * 4, Role::Output);
  }

  void execute(ExecCtx& ctx) const override {
    ctx.launch(kernel("scp_k1"), {kPairs, 1, 1}, {kBlock, 1, 1},
               {ctx.addr("a"), ctx.addr("b"), ctx.addr("out"), kElems});
  }
};

}  // namespace

std::unique_ptr<App> make_scp() { return std::make_unique<ScpApp>(); }

}  // namespace gras::workloads
