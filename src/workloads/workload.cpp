#include "src/workloads/workload.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/trace.h"

namespace gras::workloads {

const isa::Kernel& App::kernel(std::string_view kname) const {
  for (const isa::Kernel& k : kernels()) {
    if (k.name == kname) return k;
  }
  throw std::out_of_range("app '" + name() + "' has no kernel '" + std::string(kname) + "'");
}

namespace {

/// Plain (non-TMR) execution context. Three modes share this class:
///  * live            — simulate every launch (the original behaviour);
///  * live + record   — additionally capture the HostTrace (golden runs);
///  * replay          — fast-forward the fault-free prefix: launches below
///                      the resume point return their recorded results,
///                      prefix reads are served from the trace, and prefix
///                      writes are dropped (the restored snapshot already
///                      contains their effect).
class DirectCtx final : public ExecCtx {
 public:
  DirectCtx(const App& app, sim::Gpu& gpu, HostTrace* record) : gpu_(gpu), record_(record) {
    for (const BufferSpec& spec : app.buffers()) {
      const std::uint32_t base = gpu_.malloc(spec.bytes);
      addr_.emplace(spec.name, base);
      if (record_ != nullptr) record_->buffer_addrs.push_back(base);
      if (!spec.host_init.empty()) {
        gpu_.memcpy_h2d(base, spec.host_init.data(), spec.host_init.size());
      } else {
        gpu_.memset_d32(base, 0, (spec.bytes + 3) / 4);
      }
    }
  }

  /// Replay mode: the gpu must already hold the snapshot preceding
  /// `resume_launch`; buffers are not allocated, their (deterministic)
  /// addresses come from the trace.
  DirectCtx(const App& app, sim::Gpu& gpu, const HostTrace& trace,
            std::size_t resume_launch, std::span<const sim::LaunchRecord> golden,
            const sim::LaunchFork* fork = nullptr)
      : gpu_(gpu), trace_(&trace), golden_(golden), resume_(resume_launch), fork_(fork) {
    const std::vector<BufferSpec>& buffers = app.buffers();
    if (trace.buffer_addrs.size() != buffers.size() || resume_launch > golden.size()) {
      throw std::logic_error("host trace does not match app '" + app.name() + "'");
    }
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      addr_.emplace(buffers[i].name, trace.buffer_addrs[i]);
    }
  }

  std::uint32_t addr(std::string_view buffer) override { return lookup(buffer); }

  bool launch(const isa::Kernel& kernel, sim::Dim3 grid, sim::Dim3 block,
              std::vector<std::uint32_t> params) override {
    if (aborted_) return false;
    if (record_ != nullptr) record_->reads_before_launch.push_back(record_->reads.size());
    if (launched_ < resume_) {
      // Fast-forward: the golden run proved this launch fault-free and the
      // restored snapshot already contains its device-state effects.
      const trace::Span span("fast_forward", "phase", "launch", launched_);
      return golden_[launched_++].result.ok();
    }
    if (launched_ == resume_ && trace_ != nullptr &&
        resume_ < trace_->reads_before_launch.size() &&
        reads_served_ != trace_->reads_before_launch[resume_]) {
      // Every read the golden run issued before calling launch `resume_` must
      // have been served from the trace — the restored snapshot was taken at
      // that launch call, so it already contains the effect of host writes
      // that followed those reads (e.g. a flag cleared after being polled),
      // and a live read against it would see post-read state.
      throw std::logic_error("host logic diverged from the golden trace before resume");
    }
    if (launched_ == resume_ && fork_ != nullptr) {
      // Batched lane: the gpu was restored mid-launch from the fork, so this
      // launch call resumes the suspended state instead of starting fresh.
      // The kernel/grid/params arguments are discarded — the host logic is
      // deterministic, so they equal what fork.progress already carries.
      ++launched_;
      const sim::LaunchResult r = gpu_.resume_launch(fork_->progress);
      if (!r.ok()) {
        aborted_ = true;
        trap_ = r.trap;
        return false;
      }
      return true;
    }
    ++launched_;
    const sim::LaunchResult r = gpu_.launch(kernel, grid, block, std::move(params));
    if (!r.ok()) {
      aborted_ = true;
      trap_ = r.trap;
      return false;
    }
    return true;
  }

  std::uint32_t read_u32(std::string_view buffer, std::uint64_t off) override {
    std::uint32_t v = 0;
    std::uint8_t bytes[4];
    read_bytes(buffer, off, bytes);
    __builtin_memcpy(&v, bytes, 4);
    return v;
  }
  void write_u32(std::string_view buffer, std::uint64_t off, std::uint32_t value) override {
    std::uint8_t bytes[4];
    __builtin_memcpy(bytes, &value, 4);
    write_bytes(buffer, off, bytes);
  }
  void read_bytes(std::string_view buffer, std::uint64_t off,
                  std::span<std::uint8_t> out) override {
    // Trace-served reads are all reads the golden run issued before calling
    // launch `resume_` — including reads between the last prefix launch's
    // return and that call, which must not see the restored (post-write)
    // image. Reads once the resume launch has issued run live.
    const bool before_resume_call =
        launched_ < resume_ ||
        (launched_ == resume_ && trace_ != nullptr &&
         resume_ < trace_->reads_before_launch.size() &&
         reads_served_ < trace_->reads_before_launch[resume_]);
    if (before_resume_call) {
      if (reads_served_ >= trace_->reads.size() ||
          trace_->reads[reads_served_].size() != out.size()) {
        throw std::logic_error("host replay diverged from the golden trace");
      }
      const std::vector<std::uint8_t>& data = trace_->reads[reads_served_++];
      std::copy(data.begin(), data.end(), out.begin());
      return;
    }
    gpu_.memcpy_d2h(out.data(), lookup(buffer) + static_cast<std::uint32_t>(off), out.size());
    if (record_ != nullptr) record_->reads.emplace_back(out.begin(), out.end());
  }
  void write_bytes(std::string_view buffer, std::uint64_t off,
                   std::span<const std::uint8_t> in) override {
    if (launched_ < resume_) return;  // effect already in the restored image
    gpu_.memcpy_h2d(lookup(buffer) + static_cast<std::uint32_t>(off), in.data(), in.size());
  }

  void mark_timeout() override {
    aborted_ = true;
    trap_ = sim::TrapKind::Watchdog;
  }
  void mark_host_error() override {
    aborted_ = true;
    trap_ = sim::TrapKind::HostCheck;
  }
  bool aborted() const override { return aborted_; }
  sim::TrapKind trap() const { return trap_; }

 private:
  std::uint32_t lookup(std::string_view buffer) const {
    const auto it = addr_.find(std::string(buffer));
    if (it == addr_.end()) {
      throw std::out_of_range("unknown buffer '" + std::string(buffer) + "'");
    }
    return it->second;
  }

  sim::Gpu& gpu_;
  std::unordered_map<std::string, std::uint32_t> addr_;
  HostTrace* record_ = nullptr;                     ///< live: capture trace
  const HostTrace* trace_ = nullptr;                ///< replay: trace source
  std::span<const sim::LaunchRecord> golden_;       ///< replay: prefix results
  std::size_t resume_ = 0;                          ///< replay: first live launch
  const sim::LaunchFork* fork_ = nullptr;           ///< batched: mid-launch resume
  std::size_t launched_ = 0;
  std::size_t reads_served_ = 0;
  bool aborted_ = false;
  sim::TrapKind trap_ = sim::TrapKind::None;
};

RunOutput collect_output(const App& app, DirectCtx& ctx) {
  app.execute(ctx);
  RunOutput out;
  out.trap = ctx.trap();
  if (!out.completed()) return out;
  for (const BufferSpec& spec : app.buffers()) {
    if (!spec.is_output()) continue;
    std::vector<std::uint8_t> bytes(spec.bytes);
    ctx.read_bytes(spec.name, 0, bytes);
    out.outputs.push_back(std::move(bytes));
  }
  return app.postprocess(std::move(out));
}

}  // namespace

RunOutput run_app(const App& app, sim::Gpu& gpu, HostTrace* record) {
  DirectCtx ctx(app, gpu, record);
  return collect_output(app, ctx);
}

RunOutput replay_app(const App& app, sim::Gpu& gpu, const HostTrace& trace,
                     std::size_t resume_launch,
                     std::span<const sim::LaunchRecord> golden_launches) {
  DirectCtx ctx(app, gpu, trace, resume_launch, golden_launches);
  return collect_output(app, ctx);
}

RunOutput resume_app(const App& app, sim::Gpu& gpu, const HostTrace& trace,
                     std::size_t resume_launch,
                     std::span<const sim::LaunchRecord> golden_launches,
                     const sim::LaunchFork& fork) {
  DirectCtx ctx(app, gpu, trace, resume_launch, golden_launches, &fork);
  return collect_output(app, ctx);
}

namespace {

/// 32-bit word `w` of a byte buffer, zero-padded past the end.
std::uint32_t word_at(const std::vector<std::uint8_t>& bytes, std::size_t w) {
  std::uint32_t v = 0;
  const std::size_t base = w * 4;
  for (std::size_t i = 0; i < 4 && base + i < bytes.size(); ++i) {
    v |= std::uint32_t{bytes[base + i]} << (8 * i);
  }
  return v;
}

}  // namespace

CorruptionSignature compare_outputs(const RunOutput& golden, const RunOutput& faulty) {
  CorruptionSignature sig;
  static const std::vector<std::uint8_t> kEmpty;
  const std::size_t buffers = std::max(golden.outputs.size(), faulty.outputs.size());
  std::uint64_t base = 0;          // global word index of the current buffer
  bool shape_mismatch = golden.outputs.size() != faulty.outputs.size();
  for (std::size_t b = 0; b < buffers; ++b) {
    const auto& g = b < golden.outputs.size() ? golden.outputs[b] : kEmpty;
    const auto& f = b < faulty.outputs.size() ? faulty.outputs[b] : kEmpty;
    if (g.size() != f.size()) shape_mismatch = true;
    const std::size_t words = (std::max(g.size(), f.size()) + 3) / 4;
    bool buffer_hit = false;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint32_t gw = word_at(g, w);
      const std::uint32_t fw = word_at(f, w);
      if (gw == fw) continue;
      const std::uint64_t index = base + w;
      if (sig.words_mismatched == 0) sig.first_word = index;
      sig.last_word = index;
      ++sig.words_mismatched;
      buffer_hit = true;
      const std::uint32_t diff = gw ^ fw;
      for (unsigned bit = 0; bit < 32; ++bit) {
        if ((diff >> bit) & 1) ++sig.bit_flips[bit];
      }
      float gf, ff;
      std::memcpy(&gf, &gw, sizeof gf);
      std::memcpy(&ff, &fw, sizeof ff);
      if (std::isfinite(gf) && std::isfinite(ff) && gf != 0.0f) {
        const double rel = std::abs(static_cast<double>(ff) - gf) /
                           std::abs(static_cast<double>(gf));
        sig.max_rel_error = std::max(sig.max_rel_error, rel);
      }
    }
    if (buffer_hit) ++sig.buffers_affected;
    base += words;
    sig.words_total += words;
  }
  // A shape difference with byte-equal zero-padded words (possible only for
  // buffers differing by trailing zero bytes) still counts as a mismatch so
  // mismatch() stays exactly equivalent to outputs != golden.outputs.
  if (shape_mismatch && sig.words_mismatched == 0) {
    sig.words_mismatched = 1;
    sig.buffers_affected = std::max<std::uint32_t>(sig.buffers_affected, 1);
  }
  return sig;
}

namespace detail {

float init_float(std::uint64_t seed, std::uint64_t index, float lo, float hi) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + index;
  const std::uint64_t m = splitmix64(s);
  const float u = static_cast<float>(m >> 40) * 0x1.0p-24f;  // [0,1)
  return lo + (hi - lo) * u;
}

std::uint32_t init_u32(std::uint64_t seed, std::uint64_t index, std::uint32_t bound) {
  std::uint64_t s = seed * 0xbf58476d1ce4e5b9ull + index;
  const std::uint64_t m = splitmix64(s);
  return static_cast<std::uint32_t>(m % bound);
}

std::vector<std::uint8_t> pack_floats(std::span<const float> values) {
  std::vector<std::uint8_t> out(values.size() * 4);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<std::uint8_t> pack_u32(std::span<const std::uint32_t> values) {
  std::vector<std::uint8_t> out(values.size() * 4);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

}  // namespace detail

}  // namespace gras::workloads
