#include "src/workloads/workload.h"

#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/common/rng.h"

namespace gras::workloads {

const isa::Kernel& App::kernel(std::string_view kname) const {
  for (const isa::Kernel& k : kernels()) {
    if (k.name == kname) return k;
  }
  throw std::out_of_range("app '" + name() + "' has no kernel '" + std::string(kname) + "'");
}

namespace {

/// Plain (non-TMR) execution context.
class DirectCtx final : public ExecCtx {
 public:
  DirectCtx(const App& app, sim::Gpu& gpu) : gpu_(gpu) {
    for (const BufferSpec& spec : app.buffers()) {
      const std::uint32_t base = gpu_.malloc(spec.bytes);
      addr_.emplace(spec.name, base);
      if (!spec.host_init.empty()) {
        gpu_.memcpy_h2d(base, spec.host_init.data(), spec.host_init.size());
      } else {
        gpu_.memset_d32(base, 0, (spec.bytes + 3) / 4);
      }
    }
  }

  std::uint32_t addr(std::string_view buffer) override { return lookup(buffer); }

  bool launch(const isa::Kernel& kernel, sim::Dim3 grid, sim::Dim3 block,
              std::vector<std::uint32_t> params) override {
    if (aborted_) return false;
    const sim::LaunchResult r = gpu_.launch(kernel, grid, block, std::move(params));
    if (!r.ok()) {
      aborted_ = true;
      trap_ = r.trap;
      return false;
    }
    return true;
  }

  std::uint32_t read_u32(std::string_view buffer, std::uint64_t off) override {
    std::uint32_t v = 0;
    gpu_.memcpy_d2h(&v, lookup(buffer) + static_cast<std::uint32_t>(off), 4);
    return v;
  }
  void write_u32(std::string_view buffer, std::uint64_t off, std::uint32_t value) override {
    gpu_.memcpy_h2d(lookup(buffer) + static_cast<std::uint32_t>(off), &value, 4);
  }
  void read_bytes(std::string_view buffer, std::uint64_t off,
                  std::span<std::uint8_t> out) override {
    gpu_.memcpy_d2h(out.data(), lookup(buffer) + static_cast<std::uint32_t>(off), out.size());
  }
  void write_bytes(std::string_view buffer, std::uint64_t off,
                   std::span<const std::uint8_t> in) override {
    gpu_.memcpy_h2d(lookup(buffer) + static_cast<std::uint32_t>(off), in.data(), in.size());
  }

  void mark_timeout() override {
    aborted_ = true;
    trap_ = sim::TrapKind::Watchdog;
  }
  void mark_host_error() override {
    aborted_ = true;
    trap_ = sim::TrapKind::HostCheck;
  }
  bool aborted() const override { return aborted_; }
  sim::TrapKind trap() const { return trap_; }

 private:
  std::uint32_t lookup(std::string_view buffer) const {
    const auto it = addr_.find(std::string(buffer));
    if (it == addr_.end()) {
      throw std::out_of_range("unknown buffer '" + std::string(buffer) + "'");
    }
    return it->second;
  }

  sim::Gpu& gpu_;
  std::unordered_map<std::string, std::uint32_t> addr_;
  bool aborted_ = false;
  sim::TrapKind trap_ = sim::TrapKind::None;
};

}  // namespace

RunOutput run_app(const App& app, sim::Gpu& gpu) {
  DirectCtx ctx(app, gpu);
  app.execute(ctx);
  RunOutput out;
  out.trap = ctx.trap();
  if (!out.completed()) return out;
  for (const BufferSpec& spec : app.buffers()) {
    if (!spec.is_output()) continue;
    std::vector<std::uint8_t> bytes(spec.bytes);
    ctx.read_bytes(spec.name, 0, bytes);
    out.outputs.push_back(std::move(bytes));
  }
  return app.postprocess(std::move(out));
}

namespace detail {

float init_float(std::uint64_t seed, std::uint64_t index, float lo, float hi) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + index;
  const std::uint64_t m = splitmix64(s);
  const float u = static_cast<float>(m >> 40) * 0x1.0p-24f;  // [0,1)
  return lo + (hi - lo) * u;
}

std::uint32_t init_u32(std::uint64_t seed, std::uint64_t index, std::uint32_t bound) {
  std::uint64_t s = seed * 0xbf58476d1ce4e5b9ull + index;
  const std::uint64_t m = splitmix64(s);
  return static_cast<std::uint32_t>(m % bound);
}

std::vector<std::uint8_t> pack_floats(std::span<const float> values) {
  std::vector<std::uint8_t> out(values.size() * 4);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<std::uint8_t> pack_u32(std::span<const std::uint32_t> values) {
  std::vector<std::uint8_t> out(values.size() * 4);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

}  // namespace detail

}  // namespace gras::workloads
