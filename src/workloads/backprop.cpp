// BackProp (Rodinia): one forward + one weight-adjust pass of a two-layer
// perceptron (512 inputs, 16 hidden units).
//   K1 bpnn_layerforward — per-block partial sums of input x weight in
//                          shared memory (log-tree reduction over block rows).
//   K2 bpnn_adjust_weights — weight update with momentum; deltas and layer
//                          activations come through the texture path.
// The host sums partials, applies the sigmoid, computes the hidden deltas
// and uploads them between the kernels, as Rodinia's backprop_cuda.cu does.
#include <cmath>
#include <cstring>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kIn = 512;    // input units (n)
constexpr std::uint32_t kHid = 16;
constexpr std::uint32_t kBlocks = kIn / kHid;  // 32 CTAs in grid.y

constexpr char kAsm[] = R"(
.kernel backprop_layerforward
.smem 1152                           // input_node[16] | weight_matrix[16][16]
.param input ptr                     // layer activations, 1-based [n+1]
.param w ptr                         // weights [(n+1) x (hid+1)]
.param partial ptr                   // per-block partial sums [blocks x hid]
.param hid u32
.param hidp1 u32
    S2R R0, SR_TID.X                 // hidden index
    S2R R1, SR_TID.Y                 // input row within block
    S2R R2, SR_CTAID.Y               // block
    IMAD R3, R2, 16, R1
    IADD R3, R3, 1                   // input node id (1-based)
    IMAD R4, R3, c[hidp1], R0
    IADD R4, R4, 1                   // weight index
    ISETP.NE P0, R0, RZ
    ISCADD R5, R3, c[input], 2
    @!P0 LDG R6, [R5]
    SHL R7, R1, 2
    @!P0 STS [R7], R6                // input_node[ty]
    BAR
    ISCADD R8, R4, c[w], 2
    LDG R9, [R8]
    IMAD R10, R1, 16, R0
    SHL R10, R10, 2
    STS [R10+64], R9                 // weight_matrix[ty][tx]
    BAR
    LDS R11, [R7]
    LDS R12, [R10+64]
    FMUL R12, R12, R11
    STS [R10+64], R12
    BAR
    MOV R13, 1                       // stride s
bred:
    ISETP.GE P1, R13, 16
    @P1 BRA bred_done
    SHL R14, R13, 1
    IADD R15, R14, -1
    AND R16, R1, R15
    ISETP.EQ P2, R16, RZ             // ty % 2s == 0
    @P2 LDS R18, [R10+64]
    SHL R19, R13, 6                  // s rows of 16 floats
    IADD R19, R10, R19
    @P2 LDS R20, [R19+64]
    @P2 FADD R18, R18, R20
    @P2 STS [R10+64], R18
    BAR
    SHL R13, R13, 1
    BRA bred
bred_done:
    ISETP.NE P3, R1, RZ
    @P3 EXIT
    IMAD R21, R2, c[hid], R0
    ISCADD R21, R21, c[partial], 2
    SHL R22, R0, 2
    LDS R23, [R22+64]
    STG [R21], R23
    EXIT

.kernel backprop_adjust
.param delta ptr                     // hidden deltas, 1-based [hid+1]
.param ly ptr                        // input activations, 1-based [n+1]
.param w ptr
.param oldw ptr
.param hidp1 u32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.Y
    IMAD R3, R2, 16, R1
    IADD R3, R3, 1
    IMAD R4, R3, c[hidp1], R0
    IADD R4, R4, 1
    IADD R5, R0, 1
    ISCADD R5, R5, c[delta], 2
    LDT R6, [R5]
    ISCADD R7, R3, c[ly], 2
    LDT R8, [R7]
    FMUL R9, R6, R8
    FMUL R9, R9, 0.3f                // eta
    ISCADD R10, R4, c[oldw], 2
    LDG R11, [R10]
    FMUL R11, R11, 0.3f              // momentum
    FADD R9, R9, R11
    ISCADD R12, R4, c[w], 2
    LDG R13, [R12]
    FADD R13, R13, R9
    STG [R12], R13
    STG [R10], R9
    // Bias row, updated once by (ty==0, by==0).
    ISETP.NE P0, R1, RZ
    @P0 EXIT
    ISETP.NE P1, R2, RZ
    @P1 EXIT
    IADD R14, R0, 1
    ISCADD R15, R14, c[w], 2
    LDG R16, [R15]
    FMUL R17, R6, 0.3f
    FADD R16, R16, R17
    STG [R15], R16
    EXIT
)";

class BackpropApp final : public BenchApp {
 public:
  BackpropApp() : BenchApp("backprop") {
    add_kernels(kAsm);
    const std::uint32_t wcount = (kIn + 1) * (kHid + 1);
    std::vector<float> input(kIn + 1, 0.0f), w(wcount), oldw(wcount, 0.0f);
    for (std::uint32_t i = 1; i <= kIn; ++i) {
      input[i] = detail::init_float(101, i, 0.0f, 1.0f);
    }
    for (std::uint32_t i = 0; i < wcount; ++i) {
      w[i] = detail::init_float(102, i, -0.5f, 0.5f);
    }
    add_buffer("input", input.size() * 4, Role::Input, detail::pack_floats(input));
    add_buffer("w", w.size() * 4, Role::InOut, detail::pack_floats(w));
    add_buffer("oldw", oldw.size() * 4, Role::Scratch);
    add_buffer("partial", kBlocks * kHid * 4, Role::Scratch);
    add_buffer("delta", (kHid + 1) * 4, Role::Scratch);
  }

  void execute(ExecCtx& ctx) const override {
    const sim::Dim3 grid{1, kBlocks, 1}, block{kHid, kHid, 1};
    if (!ctx.launch(kernel("backprop_layerforward"), grid, block,
                    {ctx.addr("input"), ctx.addr("w"), ctx.addr("partial"), kHid,
                     kHid + 1})) {
      return;
    }
    // Host: sum the partials, add the bias, squash, derive hidden deltas.
    std::vector<std::uint8_t> raw(kBlocks * kHid * 4);
    ctx.read_bytes("partial", 0, raw);
    if (ctx.aborted()) return;
    std::vector<float> delta(kHid + 1, 0.0f);
    for (std::uint32_t j = 0; j < kHid; ++j) {
      float sum = 0.0f;
      for (std::uint32_t b = 0; b < kBlocks; ++b) {
        float v;
        std::memcpy(&v, raw.data() + (b * kHid + j) * 4, 4);
        sum += v;
      }
      sum += ctx.read_f32("w", (j + 1) * 4);  // bias weight
      const float hidden = 1.0f / (1.0f + std::exp(-sum));
      // Target 0.1 for every hidden unit stands in for the output layer.
      delta[j + 1] = hidden * (1.0f - hidden) * (0.1f - hidden);
    }
    const auto packed = detail::pack_floats(delta);
    ctx.write_bytes("delta", 0, packed);
    ctx.launch(kernel("backprop_adjust"), grid, block,
               {ctx.addr("delta"), ctx.addr("input"), ctx.addr("w"), ctx.addr("oldw"),
                kHid + 1});
  }
};

}  // namespace

std::unique_ptr<App> make_backprop() { return std::make_unique<BackpropApp>(); }

}  // namespace gras::workloads
