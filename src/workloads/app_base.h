// Shared base for the 11 benchmark implementations: owns the name, buffer
// specs and assembled kernels that the App interface exposes.
#pragma once

#include <string>
#include <vector>

#include "src/assembler/assembler.h"
#include "src/workloads/workload.h"

namespace gras::workloads {

class BenchApp : public App {
 public:
  const std::string& name() const override { return name_; }
  const std::vector<BufferSpec>& buffers() const override { return buffers_; }
  const std::vector<isa::Kernel>& kernels() const override { return kernels_; }

 protected:
  explicit BenchApp(std::string name) : name_(std::move(name)) {}

  void add_kernels(std::string_view source) {
    for (isa::Kernel& k : assembler::assemble(source)) {
      kernels_.push_back(std::move(k));
    }
  }

  BufferSpec& add_buffer(std::string bname, std::uint64_t bytes, Role role,
                         std::vector<std::uint8_t> init = {}) {
    BufferSpec spec;
    spec.name = std::move(bname);
    spec.bytes = bytes;
    spec.role = role;
    spec.host_init = std::move(init);
    buffers_.push_back(std::move(spec));
    return buffers_.back();
  }

  std::string name_;
  std::vector<BufferSpec> buffers_;
  std::vector<isa::Kernel> kernels_;
};

// Factory functions, one per benchmark (defined in the per-app .cpp files).
std::unique_ptr<App> make_va();
std::unique_ptr<App> make_scp();
std::unique_ptr<App> make_hotspot();
// Size-parameterized variants for input-sensitivity studies (SUGAR-style):
// `n` elements for VA (multiple of 256), `dim` x `dim` cells for HotSpot
// (multiple of 16).
std::unique_ptr<App> make_va_sized(std::uint32_t n);
std::unique_ptr<App> make_hotspot_sized(std::uint32_t dim, std::uint32_t steps);
std::unique_ptr<App> make_srad_v1();
std::unique_ptr<App> make_srad_v2();
std::unique_ptr<App> make_kmeans();
std::unique_ptr<App> make_lud();
std::unique_ptr<App> make_nw();
std::unique_ptr<App> make_pathfinder();
std::unique_ptr<App> make_backprop();
std::unique_ptr<App> make_bfs();

}  // namespace gras::workloads
