// HotSpot (Rodinia): thermal simulation, 2D five-point stencil.
//
// One kernel ("hotspot_k1"), launched once per time step with ping-ponged
// temperature buffers. Each 16x16 CTA stages its tile in shared memory;
// neighbours inside the tile come from shared memory, neighbours across the
// tile edge from global memory (clamped at the chip boundary). The power
// map is read through the texture path.
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kDim = 64;    // grid is kDim x kDim cells
constexpr std::uint32_t kTile = 16;
constexpr std::uint32_t kSteps = 2;

constexpr char kAsm[] = R"(
.kernel hotspot_k1
.smem 1024                      // 16x16 tile of temperatures
.param tin ptr
.param pow ptr
.param tout ptr
.param width u32
.param wm1 u32                  // width-1
.param hm1 u32                  // height-1
.param sdc f32                  // step / capacitance
.param rx f32                   // 1/Rx
.param ry f32                   // 1/Ry
.param rz f32                   // 1/Rz
.param amb f32                  // ambient temperature
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IMAD R4, R2, 16, R0          // column
    IMAD R5, R3, 16, R1          // row
    IMAD R6, R5, c[width], R4    // cell index
    ISCADD R8, R6, c[tin], 2
    LDG R7, [R8]                 // centre temperature
    IMAD R9, R1, 16, R0
    SHL R9, R9, 2                // tile slot byte offset
    STS [R9], R7
    BAR
    // North neighbour.
    ISETP.GT P0, R1, RZ
    @P0 LDS R10, [R9-64]
    IADD R11, R5, -1
    IMAX R11, R11, RZ
    IMAD R12, R11, c[width], R4
    ISCADD R12, R12, c[tin], 2
    @!P0 LDG R10, [R12]
    // South neighbour.
    ISETP.LT P1, R1, 15
    @P1 LDS R13, [R9+64]
    IADD R11, R5, 1
    IMIN R11, R11, c[hm1]
    IMAD R12, R11, c[width], R4
    ISCADD R12, R12, c[tin], 2
    @!P1 LDG R13, [R12]
    // West neighbour.
    ISETP.GT P2, R0, RZ
    @P2 LDS R14, [R9-4]
    IADD R11, R4, -1
    IMAX R11, R11, RZ
    IMAD R12, R5, c[width], R11
    ISCADD R12, R12, c[tin], 2
    @!P2 LDG R14, [R12]
    // East neighbour.
    ISETP.LT P3, R0, 15
    @P3 LDS R15, [R9+4]
    IADD R11, R4, 1
    IMIN R11, R11, c[wm1]
    IMAD R12, R5, c[width], R11
    ISCADD R12, R12, c[tin], 2
    @!P3 LDG R15, [R12]
    // Power through the read-only path.
    ISCADD R16, R6, c[pow], 2
    LDT R17, [R16]
    // delta = sdc * (p + (n+s-2c)*ry + (e+w-2c)*rx + (amb-c)*rz)
    FADD R18, R10, R13
    FMUL R19, R7, -2.0f
    FADD R18, R18, R19
    FMUL R18, R18, c[ry]
    FADD R20, R14, R15
    FADD R20, R20, R19
    FMUL R20, R20, c[rx]
    MOV R21, c[amb]
    FSUB R21, R21, R7
    FMUL R21, R21, c[rz]
    FADD R22, R17, R18
    FADD R22, R22, R20
    FADD R22, R22, R21
    FMUL R22, R22, c[sdc]
    FADD R22, R7, R22
    ISCADD R23, R6, c[tout], 2
    STG [R23], R22
    EXIT
)";

class HotspotApp final : public BenchApp {
 public:
  // Non-default sizes get distinct names so campaign caches never collide.
  HotspotApp(std::uint32_t dim, std::uint32_t steps)
      : BenchApp(dim == kDim && steps == kSteps
                     ? "hotspot"
                     : "hotspot@" + std::to_string(dim) + "x" + std::to_string(steps)),
        dim_(dim),
        steps_(steps) {
    add_kernels(kAsm);
    const std::uint32_t n = dim_ * dim_;
    std::vector<float> temp(n), power(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      temp[i] = detail::init_float(31, i, 323.0f, 342.0f);
      power[i] = detail::init_float(32, i, 0.0f, 0.01f);
    }
    add_buffer("temp0", n * 4, Role::InOut, detail::pack_floats(temp));
    add_buffer("temp1", n * 4, Role::Scratch);
    add_buffer("power", n * 4, Role::Input, detail::pack_floats(power));
  }

  void execute(ExecCtx& ctx) const override {
    const isa::Kernel& k = kernel("hotspot_k1");
    // Physical constants folded exactly as Rodinia's hotspot.cu does.
    const float sdc = 0.001365333f;   // step / capacitance
    const float rx = 1.0f / 0.520833f, ry = 1.0f / 0.104166f, rz = 1.0f / 0.000078f * 1e-4f;
    const float amb = 80.0f;
    auto f = [](float v) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &v, 4);
      return bits;
    };
    const sim::Dim3 grid{dim_ / kTile, dim_ / kTile, 1};
    const sim::Dim3 block{kTile, kTile, 1};
    const char* src = "temp0";
    const char* dst = "temp1";
    for (std::uint32_t step = 0; step < steps_; ++step) {
      if (!ctx.launch(k, grid, block,
                      {ctx.addr(src), ctx.addr("power"), ctx.addr(dst), dim_, dim_ - 1,
                       dim_ - 1, f(sdc), f(rx), f(ry), f(rz), f(amb)})) {
        return;
      }
      std::swap(src, dst);
    }
    // With an even step count the final state ends in temp0 (the output
    // buffer); copy it back otherwise.
    if (steps_ % 2 == 1) {
      std::vector<std::uint8_t> bytes(dim_ * dim_ * 4);
      ctx.read_bytes("temp1", 0, bytes);
      ctx.write_bytes("temp0", 0, bytes);
    }
  }

 private:
  std::uint32_t dim_;
  std::uint32_t steps_;
};

}  // namespace

std::unique_ptr<App> make_hotspot() {
  return std::make_unique<HotspotApp>(kDim, kSteps);
}

std::unique_ptr<App> make_hotspot_sized(std::uint32_t dim, std::uint32_t steps) {
  return std::make_unique<HotspotApp>(dim, steps);
}

}  // namespace gras::workloads
