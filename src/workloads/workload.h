// Workload (application) framework.
//
// An App is a declarative GPU application: a set of named device buffers, a
// set of kernels, and a host-side execute() driving kernel launches (which
// may loop and read device data back, e.g. BFS's convergence flag). Apps are
// immutable after construction, so one instance can serve thousands of
// concurrent fault-injection samples.
//
// The ExecCtx indirection is what makes the TMR hardening transform
// (src/harden) a pure wrapper: the hardened app re-uses the base app's host
// logic while triplicating buffers, rewriting kernels, and voting on every
// host-visible read — exactly the source-level TMR workflow of the paper's
// Fig. 6.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/gpu.h"

namespace gras::workloads {

/// Role of a device buffer in the application's dataflow.
enum class Role : std::uint8_t {
  Input,    ///< written by the host before execution
  Output,   ///< read by the host after execution; part of the program output
  InOut,    ///< both (e.g. in-place image updates); part of the program output
  Scratch,  ///< device-internal (zero-initialized, not part of the output)
};

/// One named device buffer.
struct BufferSpec {
  std::string name;
  std::uint64_t bytes = 0;
  Role role = Role::Scratch;
  /// Initial contents for Input/InOut buffers (size == bytes).
  std::vector<std::uint8_t> host_init;

  bool is_output() const { return role == Role::Output || role == Role::InOut; }
};

/// Host-side execution context handed to App::execute().
class ExecCtx {
 public:
  virtual ~ExecCtx() = default;

  /// Device address of a named buffer (copy 0 under TMR).
  virtual std::uint32_t addr(std::string_view buffer) = 0;

  /// Launches a kernel. Returns false when the run has aborted (trap or
  /// watchdog); the app's execute() must then return promptly.
  virtual bool launch(const isa::Kernel& kernel, sim::Dim3 grid, sim::Dim3 block,
                      std::vector<std::uint32_t> params) = 0;

  /// Host reads/writes of device data (no simulated time; coherent through
  /// L2). Under TMR, reads are majority-voted and writes fan out to all
  /// three copies.
  virtual std::uint32_t read_u32(std::string_view buffer, std::uint64_t byte_offset) = 0;
  virtual void write_u32(std::string_view buffer, std::uint64_t byte_offset,
                         std::uint32_t value) = 0;
  virtual void read_bytes(std::string_view buffer, std::uint64_t byte_offset,
                          std::span<std::uint8_t> out) = 0;
  virtual void write_bytes(std::string_view buffer, std::uint64_t byte_offset,
                           std::span<const std::uint8_t> in) = 0;

  /// Marks the run as timed out (host-side convergence loop exceeded its
  /// bound); the app's execute() must then return promptly.
  virtual void mark_timeout() = 0;

  /// Marks the run as failed by a host-side consistency check (classified
  /// DUE). Used by the TMR wrapper when a majority vote finds no majority.
  virtual void mark_host_error() = 0;

  /// True once any launch trapped or mark_timeout() was called.
  virtual bool aborted() const = 0;

  float read_f32(std::string_view buffer, std::uint64_t byte_offset) {
    const std::uint32_t bits = read_u32(buffer, byte_offset);
    float f;
    static_assert(sizeof f == sizeof bits);
    __builtin_memcpy(&f, &bits, sizeof f);
    return f;
  }
  void write_f32(std::string_view buffer, std::uint64_t byte_offset, float value) {
    std::uint32_t bits;
    __builtin_memcpy(&bits, &value, sizeof bits);
    write_u32(buffer, byte_offset, bits);
  }
};

/// Host-interaction trace of a golden run: everything the deterministic
/// host logic consumed from the device, in issue order. Replaying these
/// values lets a fault-injection sample fast-forward the host loop over the
/// fault-free launch prefix without simulating it — the host control flow
/// is a pure function of the buffer declarations and these read values.
struct HostTrace {
  /// Device base address of each buffer, in buffers() order (the bump
  /// allocator is deterministic, so these are identical in every run).
  std::vector<std::uint32_t> buffer_addrs;
  /// Bytes returned by each host read (memcpy_d2h), in issue order.
  std::vector<std::vector<std::uint8_t>> reads;
  /// Number of host reads issued before launch i started.
  std::vector<std::size_t> reads_before_launch;
};

/// Result of running an app once.
struct RunOutput {
  sim::TrapKind trap = sim::TrapKind::None;
  /// Output-buffer contents in buffers() order (only is_output() buffers).
  std::vector<std::vector<std::uint8_t>> outputs;

  bool completed() const { return trap == sim::TrapKind::None; }
  bool operator==(const RunOutput&) const = default;
};

/// How a faulty run's output differs from golden — the SDC "anatomy" signal
/// (which bits flipped, how big the numeric error is, how far the corruption
/// spread) instead of a bare corrupted/clean boolean. Output buffers are
/// compared as a single concatenated stream of 32-bit words in buffers()
/// order (a trailing partial word is zero-padded on both sides), so word
/// indices are stable global coordinates across the whole program output.
struct CorruptionSignature {
  std::uint64_t words_total = 0;       ///< words compared across all buffers
  std::uint64_t words_mismatched = 0;  ///< words that differ from golden
  std::uint32_t buffers_affected = 0;  ///< output buffers holding a mismatch
  std::uint64_t first_word = 0;        ///< global index of the first mismatch
  std::uint64_t last_word = 0;         ///< global index of the last mismatch
  /// Largest |faulty - golden| / |golden| over mismatched words whose golden
  /// and faulty values are both finite floats and golden is nonzero (0 when
  /// no such pair exists — e.g. integer outputs or NaN corruption).
  double max_rel_error = 0.0;
  /// How often each bit position differs: histogram of set bits of
  /// golden ^ faulty over mismatched words. Localizes corruption within the
  /// word (sign/exponent/mantissa for float outputs).
  std::array<std::uint32_t, 32> bit_flips{};

  bool mismatch() const { return words_mismatched != 0; }
  /// Words spanned from first to last mismatch (1 = a single corrupted word).
  std::uint64_t spatial_extent() const {
    return words_mismatched == 0 ? 0 : last_word - first_word + 1;
  }
};

/// Compares a faulty run's outputs against golden. `mismatch()` is true
/// exactly when `faulty.outputs != golden.outputs`, so SDC classification on
/// the signature is equivalent to the old boolean comparison.
CorruptionSignature compare_outputs(const RunOutput& golden, const RunOutput& faulty);

/// A GPU application.
class App {
 public:
  virtual ~App() = default;
  virtual const std::string& name() const = 0;
  /// Buffer declarations, deterministic (including host_init contents).
  virtual const std::vector<BufferSpec>& buffers() const = 0;
  /// All kernels this app launches (names unique within the app).
  virtual const std::vector<isa::Kernel>& kernels() const = 0;
  /// Host logic: issues launches through the context. Must be re-entrant
  /// (const) — one App instance runs on many simulated GPUs concurrently.
  virtual void execute(ExecCtx& ctx) const = 0;

  /// Post-processes the raw output buffers after execution (identity by
  /// default). The TMR wrapper overrides this with the majority vote of the
  /// paper's Fig. 6, turning an all-copies-disagree vote into a DUE.
  virtual RunOutput postprocess(RunOutput raw) const { return raw; }

  /// Kernel lookup by name; throws if missing.
  const isa::Kernel& kernel(std::string_view kname) const;
};

/// Runs `app` on `gpu`: allocates and initializes buffers, drives execute(),
/// reads back outputs, and applies the app's postprocess hook. When `record`
/// is non-null the host-interaction trace is captured into it (golden runs).
RunOutput run_app(const App& app, sim::Gpu& gpu, HostTrace* record = nullptr);

/// Replays `app` on a `gpu` that has already been restored to the
/// launch-boundary snapshot preceding launch `resume_launch`: the first
/// `resume_launch` launches return their recorded golden results without
/// simulating, prefix host reads are served from `trace`, and prefix host
/// writes are dropped (their effect is already part of the restored image).
/// From `resume_launch` onward everything runs live on the gpu.
RunOutput replay_app(const App& app, sim::Gpu& gpu, const HostTrace& trace,
                     std::size_t resume_launch,
                     std::span<const sim::LaunchRecord> golden_launches);

/// Like replay_app, but the gpu has been restored mid-launch from a batched
/// fork (Gpu::restore_fork): launch `resume_launch` does not start fresh, it
/// resumes the suspended launch carried in `fork.progress` (the host-side
/// kernel/params for that call are discarded — determinism guarantees they
/// match what the fork captured). Later launches run live as usual.
RunOutput resume_app(const App& app, sim::Gpu& gpu, const HostTrace& trace,
                     std::size_t resume_launch,
                     std::span<const sim::LaunchRecord> golden_launches,
                     const sim::LaunchFork& fork);

/// Helpers shared by workload implementations.
namespace detail {
/// Deterministic pseudo-random float in [lo, hi) derived from (seed, index).
float init_float(std::uint64_t seed, std::uint64_t index, float lo, float hi);
/// Deterministic pseudo-random u32 in [0, bound).
std::uint32_t init_u32(std::uint64_t seed, std::uint64_t index, std::uint32_t bound);
/// Packs a float vector into bytes.
std::vector<std::uint8_t> pack_floats(std::span<const float> values);
std::vector<std::uint8_t> pack_u32(std::span<const std::uint32_t> values);
}  // namespace detail

/// Registry of the paper's 11 benchmark applications.
/// Names: srad_v1, srad_v2, kmeans, hotspot, lud, scp, va, nw, pathfinder,
/// backprop, bfs.
std::vector<std::string> benchmark_names();
/// Builds a benchmark by name; throws std::out_of_range on unknown names.
std::unique_ptr<App> make_benchmark(std::string_view name);
/// Builds all 11 benchmarks (in the paper's Figure-1 presentation order).
std::vector<std::unique_ptr<App>> make_all_benchmarks();

}  // namespace gras::workloads
