// PathFinder (Rodinia): dynamic-programming shortest path down a grid,
// processed in pyramid steps. One kernel (dynproc_kernel): each CTA owns a
// column stripe plus a halo, iterates `pyramid_height` rows in shared
// memory, and writes back only the stripe interior that remained valid.
// Integer workload with heavily predicated bounds logic.
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kCols = 512;
constexpr std::uint32_t kRows = 8;
constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kPyramid = 2;
constexpr std::uint32_t kBorder = kPyramid;                  // halo per side
constexpr std::uint32_t kSmallBlock = kBlock - 2 * kBorder;  // 252

constexpr char kAsm[] = R"(
.kernel pathfinder_k1
.smem 1024                           // prev[256] costs
.param wall ptr
.param src ptr
.param dst ptr
.param cols u32
.param iteration u32
.param start u32
.param border u32
.param sbc u32
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    IMUL R3, R1, c[sbc]
    ISUB R3, R3, c[border]           // blkX (signed)
    IADD R4, R3, R0                  // xidx
    // validXmin = max(-blkX, 0); validXmax = min(255, cols-blkX-1)
    MOV R5, RZ
    ISUB R5, R5, R3
    IMAX R5, R5, RZ
    MOV R6, c[cols]
    ISUB R6, R6, R3
    IADD R6, R6, -1
    IMIN R6, R6, 255
    // valid = (xidx >= 0) && (xidx < cols), composed through SEL
    ISETP.GE P0, R4, RZ
    SEL R9, 1, RZ, P0
    ISETP.LT P1, R4, c[cols]
    SEL R10, R9, RZ, P1              // R10 = valid flag
    ISETP.NE P2, R10, RZ
    SHL R7, R0, 2                    // my shared slot
    IMAX R11, R4, RZ
    MOV R12, c[cols]
    IADD R12, R12, -1
    IMIN R11, R11, R12               // clamped xidx
    ISCADD R13, R11, c[src], 2
    @P2 LDG R14, [R13]
    @P2 STS [R7], R14
    BAR
    MOV R15, RZ                      // i
ploop:
    ISETP.GE P3, R15, c[iteration]
    @P3 BRA ploop_done
    // computed = valid && (i+1 <= tid <= 254-i)
    IADD R16, R15, 1
    ISETP.GE P4, R0, R16
    SEL R17, R10, RZ, P4
    MOV R18, 254
    ISUB R18, R18, R15
    ISETP.LE P5, R0, R18
    SEL R17, R17, RZ, P5
    ISETP.NE P6, R17, RZ
    IADD R19, R0, -1
    IMAX R19, R19, R5
    SHL R19, R19, 2
    @P6 LDS R20, [R19]               // left
    @P6 LDS R21, [R7]                // up
    IADD R22, R0, 1
    IMIN R22, R22, R6
    SHL R22, R22, 2
    @P6 LDS R23, [R22]               // right
    @P6 IMIN R20, R20, R21
    @P6 IMIN R20, R20, R23           // shortest
    IADD R24, R15, c[start]
    IADD R24, R24, 1                 // wall row
    IMAD R24, R24, c[cols], R4
    ISCADD R24, R24, c[wall], 2
    @P6 LDG R25, [R24]
    @P6 IADD R25, R25, R20
    BAR
    @P6 STS [R7], R25
    BAR
    IADD R15, R15, 1
    BRA ploop
ploop_done:
    // Write out lanes that were computed in the final iteration.
    ISETP.GE P4, R0, c[iteration]
    SEL R17, R10, RZ, P4
    MOV R18, 255
    ISUB R18, R18, c[iteration]
    ISETP.LE P5, R0, R18
    SEL R17, R17, RZ, P5
    ISETP.NE P6, R17, RZ
    @P6 LDS R26, [R7]
    ISCADD R27, R4, c[dst], 2
    @P6 STG [R27], R26
    EXIT
)";

class PathfinderApp final : public BenchApp {
 public:
  PathfinderApp() : BenchApp("pathfinder") {
    add_kernels(kAsm);
    std::vector<std::uint32_t> wall(kRows * kCols);
    for (std::uint32_t i = 0; i < wall.size(); ++i) {
      wall[i] = detail::init_u32(91, i, 10);
    }
    std::vector<std::uint32_t> row0(wall.begin(), wall.begin() + kCols);
    add_buffer("wall", wall.size() * 4, Role::Input, detail::pack_u32(wall));
    add_buffer("res0", kCols * 4, Role::InOut, detail::pack_u32(row0));
    add_buffer("res1", kCols * 4, Role::Scratch);
  }

  void execute(ExecCtx& ctx) const override {
    const std::uint32_t grid =
        static_cast<std::uint32_t>((kCols + kSmallBlock - 1) / kSmallBlock);
    const char* src = "res0";
    const char* dst = "res1";
    std::uint32_t t = 0;
    while (t < kRows - 1) {
      const std::uint32_t iteration = std::min(kPyramid, kRows - 1 - t);
      if (!ctx.launch(kernel("pathfinder_k1"), {grid, 1, 1}, {kBlock, 1, 1},
                      {ctx.addr("wall"), ctx.addr(src), ctx.addr(dst), kCols, iteration,
                       t, kBorder, kSmallBlock})) {
        return;
      }
      t += iteration;
      std::swap(src, dst);
    }
    // The final result must land in res0 (the output buffer).
    if (std::string_view(src) != "res0") {
      std::vector<std::uint8_t> bytes(kCols * 4);
      ctx.read_bytes(src, 0, bytes);
      ctx.write_bytes("res0", 0, bytes);
    }
  }
};

}  // namespace

std::unique_ptr<App> make_pathfinder() { return std::make_unique<PathfinderApp>(); }

}  // namespace gras::workloads
