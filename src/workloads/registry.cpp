// Benchmark registry: the paper's 11 applications (23 kernels), presented in
// the order of Figure 1.
#include <stdexcept>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

struct Entry {
  const char* name;
  std::unique_ptr<App> (*factory)();
};

constexpr Entry kEntries[] = {
    {"srad_v1", make_srad_v1},  {"srad_v2", make_srad_v2}, {"kmeans", make_kmeans},
    {"hotspot", make_hotspot},  {"lud", make_lud},         {"scp", make_scp},
    {"va", make_va},            {"nw", make_nw},           {"pathfinder", make_pathfinder},
    {"backprop", make_backprop},{"bfs", make_bfs},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  for (const Entry& e : kEntries) names.emplace_back(e.name);
  return names;
}

std::unique_ptr<App> make_benchmark(std::string_view name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) return e.factory();
  }
  throw std::out_of_range("unknown benchmark '" + std::string(name) + "'");
}

std::vector<std::unique_ptr<App>> make_all_benchmarks() {
  std::vector<std::unique_ptr<App>> apps;
  for (const Entry& e : kEntries) apps.push_back(e.factory());
  return apps;
}

}  // namespace gras::workloads
