// SRADv1 (Rodinia srad_v1): speckle-reducing anisotropic diffusion, the
// 6-kernel variant. Kernel roles match Rodinia's srad_v1/main.cu:
//   K1 extract   — I = exp(I/255)
//   K2 prepare   — stage I and I^2 for the reduction
//   K3 reduce    — block-tree reduction of both arrays (launched twice per
//                  iteration: 16 partials, then 1 value)
//   K4 srad      — directional derivatives + diffusion coefficient
//   K5 srad2     — image update from the coefficients
//   K6 compress  — I = log(I)*255
// The host consumes the reduction result between launches (mean/variance ->
// q0sqr), exactly like Rodinia.
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kDim = 64;
constexpr std::uint32_t kN = kDim * kDim;
constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kRedBlocks = kN / kBlock;  // 16
constexpr std::uint32_t kIters = 2;
constexpr float kLambda = 0.5f;

constexpr char kAsm[] = R"(
.kernel srad1_extract
.param img ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[img], 2
    LDG R5, [R4]
    FMUL R5, R5, 0.00392156863f      // /255
    MUFU.EXP R5, R5
    STG [R4], R5
    EXIT

.kernel srad1_prepare
.param img ptr
.param sums ptr
.param sums2 ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[img], 2
    LDG R5, [R4]
    ISCADD R6, R3, c[sums], 2
    STG [R6], R5
    FMUL R7, R5, R5
    ISCADD R8, R3, c[sums2], 2
    STG [R8], R7
    EXIT

.kernel srad1_reduce
.smem 2048                           // two 256-float regions
.param in1 ptr
.param in2 ptr
.param out1 ptr
.param out2 ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_TID.X
    S2R R2, SR_NTID.X
    IMAD R3, R0, R2, R1
    MOV R4, 0                        // 0.0f defaults for out-of-range lanes
    MOV R5, 0
    ISETP.GE P0, R3, c[n]
    ISCADD R6, R3, c[in1], 2
    @!P0 LDG R4, [R6]
    ISCADD R6, R3, c[in2], 2
    @!P0 LDG R5, [R6]
    SHL R7, R1, 2                    // smem slot for array 1
    STS [R7], R4
    STS [R7+1024], R5
    BAR
    SHR R8, R2, 1                    // stride = ntid/2
red:
    ISETP.EQ P1, R8, RZ
    @P1 BRA red_end
    ISETP.LT P0, R1, R8
    IADD R9, R1, R8
    SHL R9, R9, 2
    @P0 LDS R10, [R9]
    @P0 LDS R11, [R7]
    @P0 FADD R10, R10, R11
    @P0 STS [R7], R10
    @P0 LDS R10, [R9+1024]
    @P0 LDS R11, [R7+1024]
    @P0 FADD R10, R10, R11
    @P0 STS [R7+1024], R10
    BAR
    SHR R8, R8, 1
    BRA red
red_end:
    ISETP.NE P2, R1, RZ
    @P2 EXIT
    LDS R12, [0]
    ISCADD R13, R0, c[out1], 2
    STG [R13], R12
    LDS R12, [1024]
    ISCADD R13, R0, c[out2], 2
    STG [R13], R12
    EXIT

.kernel srad1_srad
.param img ptr
.param dn ptr
.param ds ptr
.param dw ptr
.param de ptr
.param cc ptr
.param width u32
.param wm1 u32
.param hm1 u32
.param q0 f32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IMAD R4, R2, 16, R0              // column
    IMAD R5, R3, 16, R1              // row
    IMAD R6, R5, c[width], R4        // index
    ISCADD R7, R6, c[img], 2
    LDG R8, [R7]                     // Ic
    // Clamped neighbour indices.
    IADD R9, R5, -1
    IMAX R9, R9, RZ
    IMAD R9, R9, c[width], R4
    ISCADD R9, R9, c[img], 2
    LDG R10, [R9]                    // north
    IADD R9, R5, 1
    IMIN R9, R9, c[hm1]
    IMAD R9, R9, c[width], R4
    ISCADD R9, R9, c[img], 2
    LDG R11, [R9]                    // south
    IADD R9, R4, -1
    IMAX R9, R9, RZ
    IMAD R9, R5, c[width], R9
    ISCADD R9, R9, c[img], 2
    LDG R12, [R9]                    // west
    IADD R9, R4, 1
    IMIN R9, R9, c[wm1]
    IMAD R9, R5, c[width], R9
    ISCADD R9, R9, c[img], 2
    LDG R13, [R9]                    // east
    FSUB R10, R10, R8                // dN
    FSUB R11, R11, R8                // dS
    FSUB R12, R12, R8                // dW
    FSUB R13, R13, R8                // dE
    // G2 = (dN^2+dS^2+dW^2+dE^2) / Ic^2
    FMUL R14, R10, R10
    FFMA R14, R11, R11, R14
    FFMA R14, R12, R12, R14
    FFMA R14, R13, R13, R14
    FMUL R15, R8, R8
    MUFU.RCP R15, R15
    FMUL R14, R14, R15               // G2
    // L = (dN+dS+dW+dE) / Ic
    FADD R16, R10, R11
    FADD R16, R16, R12
    FADD R16, R16, R13
    MUFU.RCP R17, R8
    FMUL R16, R16, R17               // L
    // num = 0.5*G2 - (1/16)*L^2 ; den = 1 + 0.25*L ; qsqr = num/den^2
    FMUL R18, R14, 0.5f
    FMUL R19, R16, R16
    FMUL R19, R19, 0.0625f
    FSUB R18, R18, R19               // num
    FMUL R19, R16, 0.25f
    FADD R19, R19, 1.0f              // den
    FMUL R19, R19, R19
    MUFU.RCP R19, R19
    FMUL R18, R18, R19               // qsqr
    // den2 = (qsqr - q0) / (q0*(1+q0)) ; c = 1/(1+den2), clamped to [0,1]
    FSUB R20, R18, c[q0]
    MOV R21, c[q0]
    FADD R22, R21, 1.0f
    FMUL R22, R21, R22
    MUFU.RCP R22, R22
    FMUL R20, R20, R22
    FADD R20, R20, 1.0f
    MUFU.RCP R20, R20
    FMAX R20, R20, 0.0f
    FMIN R20, R20, 1.0f
    // Store coefficient and the four derivatives.
    ISCADD R23, R6, c[cc], 2
    STG [R23], R20
    ISCADD R23, R6, c[dn], 2
    STG [R23], R10
    ISCADD R23, R6, c[ds], 2
    STG [R23], R11
    ISCADD R23, R6, c[dw], 2
    STG [R23], R12
    ISCADD R23, R6, c[de], 2
    STG [R23], R13
    EXIT

.kernel srad1_srad2
.param img ptr
.param dn ptr
.param ds ptr
.param dw ptr
.param de ptr
.param cc ptr
.param width u32
.param wm1 u32
.param hm1 u32
.param lam f32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IMAD R4, R2, 16, R0
    IMAD R5, R3, 16, R1
    IMAD R6, R5, c[width], R4
    // cN = cC = c[idx]; cS = c[south]; cE = c[east]  (Rodinia's scheme)
    ISCADD R7, R6, c[cc], 2
    LDG R8, [R7]                     // cN / cW
    IADD R9, R5, 1
    IMIN R9, R9, c[hm1]
    IMAD R9, R9, c[width], R4
    ISCADD R9, R9, c[cc], 2
    LDG R10, [R9]                    // cS
    IADD R9, R4, 1
    IMIN R9, R9, c[wm1]
    IMAD R9, R5, c[width], R9
    ISCADD R9, R9, c[cc], 2
    LDG R11, [R9]                    // cE
    ISCADD R9, R6, c[dn], 2
    LDG R12, [R9]
    ISCADD R9, R6, c[ds], 2
    LDG R13, [R9]
    ISCADD R9, R6, c[dw], 2
    LDG R14, [R9]
    ISCADD R9, R6, c[de], 2
    LDG R15, [R9]
    // D = cN*dN + cS*dS + cW*dW + cE*dE
    FMUL R16, R8, R12
    FFMA R16, R10, R13, R16
    FFMA R16, R8, R14, R16
    FFMA R16, R11, R15, R16
    // I += 0.25 * lambda * D
    FMUL R16, R16, 0.25f
    FMUL R16, R16, c[lam]
    ISCADD R17, R6, c[img], 2
    LDG R18, [R17]
    FADD R18, R18, R16
    STG [R17], R18
    EXIT

.kernel srad1_compress
.param img ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[img], 2
    LDG R5, [R4]
    MUFU.LOG R5, R5
    FMUL R5, R5, 255.0f
    STG [R4], R5
    EXIT
)";

class SradV1App final : public BenchApp {
 public:
  SradV1App() : BenchApp("srad_v1") {
    add_kernels(kAsm);
    std::vector<float> img(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      img[i] = detail::init_float(41, i, 0.0f, 255.0f);
    }
    add_buffer("img", kN * 4, Role::InOut, detail::pack_floats(img));
    add_buffer("dn", kN * 4, Role::Scratch);
    add_buffer("ds", kN * 4, Role::Scratch);
    add_buffer("dw", kN * 4, Role::Scratch);
    add_buffer("de", kN * 4, Role::Scratch);
    add_buffer("cc", kN * 4, Role::Scratch);
    add_buffer("sums", kN * 4, Role::Scratch);
    add_buffer("sums2", kN * 4, Role::Scratch);
    add_buffer("psum", kRedBlocks * 4, Role::Scratch);
    add_buffer("psum2", kRedBlocks * 4, Role::Scratch);
  }

  void execute(ExecCtx& ctx) const override {
    auto f = [](float v) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &v, 4);
      return bits;
    };
    const sim::Dim3 grid1{kN / kBlock, 1, 1}, block1{kBlock, 1, 1};
    const sim::Dim3 grid2{kDim / 16, kDim / 16, 1}, block2{16, 16, 1};

    if (!ctx.launch(kernel("srad1_extract"), grid1, block1, {ctx.addr("img"), kN})) return;

    for (std::uint32_t iter = 0; iter < kIters; ++iter) {
      if (!ctx.launch(kernel("srad1_prepare"), grid1, block1,
                      {ctx.addr("img"), ctx.addr("sums"), ctx.addr("sums2"), kN})) {
        return;
      }
      // Two-level tree reduction: 4096 -> 16 -> 1.
      if (!ctx.launch(kernel("srad1_reduce"), {kRedBlocks, 1, 1}, block1,
                      {ctx.addr("sums"), ctx.addr("sums2"), ctx.addr("psum"),
                       ctx.addr("psum2"), kN})) {
        return;
      }
      if (!ctx.launch(kernel("srad1_reduce"), {1, 1, 1}, {kRedBlocks, 1, 1},
                      {ctx.addr("psum"), ctx.addr("psum2"), ctx.addr("psum"),
                       ctx.addr("psum2"), kRedBlocks})) {
        return;
      }
      const float total = ctx.read_f32("psum", 0);
      const float total2 = ctx.read_f32("psum2", 0);
      const float mean = total / static_cast<float>(kN);
      const float var = total2 / static_cast<float>(kN) - mean * mean;
      const float q0sqr = var / (mean * mean);

      if (!ctx.launch(kernel("srad1_srad"), grid2, block2,
                      {ctx.addr("img"), ctx.addr("dn"), ctx.addr("ds"), ctx.addr("dw"),
                       ctx.addr("de"), ctx.addr("cc"), kDim, kDim - 1, kDim - 1,
                       f(q0sqr)})) {
        return;
      }
      if (!ctx.launch(kernel("srad1_srad2"), grid2, block2,
                      {ctx.addr("img"), ctx.addr("dn"), ctx.addr("ds"), ctx.addr("dw"),
                       ctx.addr("de"), ctx.addr("cc"), kDim, kDim - 1, kDim - 1,
                       f(kLambda)})) {
        return;
      }
    }
    ctx.launch(kernel("srad1_compress"), grid1, block1, {ctx.addr("img"), kN});
  }
};

}  // namespace

std::unique_ptr<App> make_srad_v1() { return std::make_unique<SradV1App>(); }

}  // namespace gras::workloads
