// LUD (Rodinia): blocked LU decomposition, three kernels per block step.
//   K1 lud_diagonal  — factorises the 16x16 diagonal block in shared memory
//                      (one CTA of 16 threads).
//   K2 lud_perimeter — triangular solves for the blocks right of / below the
//                      diagonal (32-thread CTAs whose two halves take
//                      different code paths: real warp divergence under an
//                      explicit SSY/SYNC region).
//   K3 lud_internal  — rank-16 update of the trailing submatrix (16x16 CTAs,
//                      two shared-memory tiles).
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kDim = 64;
constexpr std::uint32_t kBs = 16;

constexpr char kAsm[] = R"(
.kernel lud_diagonal
.smem 1024
.param m ptr
.param width u32
.param off u32
    S2R R0, SR_TID.X
    MOV R1, RZ                       // i
dload:
    ISETP.GE P0, R1, 16
    @P0 BRA dload_done
    IADD R2, R1, c[off]
    IMAD R3, R2, c[width], R0
    IADD R3, R3, c[off]
    ISCADD R4, R3, c[m], 2
    LDG R5, [R4]
    IMAD R6, R1, 16, R0
    SHL R6, R6, 2
    STS [R6], R5
    IADD R1, R1, 1
    BRA dload
dload_done:
    BAR
    MOV R1, RZ                       // pivot i
elim:
    ISETP.GE P0, R1, 15
    @P0 BRA elim_done
    ISETP.GT P1, R0, R1              // rows below the pivot
    IMAD R2, R0, 16, R1
    SHL R2, R2, 2                    // shadow[tid][i]
    IMAD R3, R1, 16, R1
    SHL R3, R3, 2                    // shadow[i][i]
    @P1 LDS R4, [R2]
    @P1 LDS R5, [R3]
    @P1 MUFU.RCP R5, R5
    @P1 FMUL R4, R4, R5              // multiplier
    @P1 STS [R2], R4
    BAR
    IADD R6, R1, 1                   // j
jloop:
    ISETP.GE P2, R6, 16
    @P2 BRA jloop_done
    IMAD R7, R0, 16, R6
    SHL R7, R7, 2                    // shadow[tid][j]
    IMAD R8, R1, 16, R6
    SHL R8, R8, 2                    // shadow[i][j]
    @P1 LDS R9, [R7]
    @P1 LDS R10, [R8]
    @P1 FMUL R10, R4, R10
    @P1 FSUB R9, R9, R10
    @P1 STS [R7], R9
    IADD R6, R6, 1
    BRA jloop
jloop_done:
    BAR
    IADD R1, R1, 1
    BRA elim
elim_done:
    MOV R1, RZ
dstore:
    ISETP.GE P0, R1, 16
    @P0 BRA dstore_done
    IADD R2, R1, c[off]
    IMAD R3, R2, c[width], R0
    IADD R3, R3, c[off]
    ISCADD R4, R3, c[m], 2
    IMAD R6, R1, 16, R0
    SHL R6, R6, 2
    LDS R5, [R6]
    STG [R4], R5
    IADD R1, R1, 1
    BRA dstore
dstore_done:
    EXIT

.kernel lud_perimeter
.smem 3072                           // dia | row block | col block
.param m ptr
.param width u32
.param off u32
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    IADD R2, R1, 1
    SHL R2, R2, 4
    IADD R2, R2, c[off]              // moving-axis offset of the target block
    ISETP.LT P0, R0, 16              // lower half: row block, upper: col block
    AND R3, R0, 15                   // local lane 0..15
    MOV R4, RZ                       // i
pload:
    ISETP.GE P1, R4, 16
    @P1 BRA pload_done
    IADD R5, R4, c[off]
    IMAD R6, R5, c[width], R3
    IADD R6, R6, c[off]
    ISCADD R6, R6, c[m], 2
    @P0 LDG R7, [R6]
    IMAD R8, R4, 16, R3
    SHL R8, R8, 2
    @P0 STS [R8], R7                 // diagonal block
    IMAD R6, R5, c[width], R3
    IADD R6, R6, R2
    ISCADD R6, R6, c[m], 2
    @P0 LDG R7, [R6]
    @P0 STS [R8+1024], R7            // row block
    IADD R5, R4, R2
    IMAD R6, R5, c[width], R3
    IADD R6, R6, c[off]
    ISCADD R6, R6, c[m], 2
    @!P0 LDG R7, [R6]
    @!P0 STS [R8+2048], R7           // col block
    IADD R4, R4, 1
    BRA pload
pload_done:
    BAR
    SSY pjoin
    @!P0 BRA pcol
    // Row half: forward substitution with the diagonal's unit-lower factor.
    MOV R4, 1                        // i
prow_i:
    ISETP.GE P1, R4, 16
    @P1 BRA prow_done
    IMAD R9, R4, 16, R3
    SHL R9, R9, 2
    LDS R10, [R9+1024]               // row[i][idx]
    MOV R5, RZ                       // j
prow_j:
    ISETP.GE P2, R5, R4
    @P2 BRA prow_j_done
    IMAD R11, R4, 16, R5
    SHL R11, R11, 2
    LDS R12, [R11]                   // dia[i][j]
    IMAD R13, R5, 16, R3
    SHL R13, R13, 2
    LDS R14, [R13+1024]              // row[j][idx]
    FMUL R12, R12, R14
    FSUB R10, R10, R12
    IADD R5, R5, 1
    BRA prow_j
prow_j_done:
    STS [R9+1024], R10
    IADD R4, R4, 1
    BRA prow_i
prow_done:
    SYNC
pcol:
    // Col half: solve against the upper factor, scaling by the pivots.
    MOV R4, RZ                       // i
pcol_i:
    ISETP.GE P1, R4, 16
    @P1 BRA pcol_done
    IMAD R9, R3, 16, R4
    SHL R9, R9, 2
    LDS R10, [R9+2048]               // col[idx][i]
    MOV R5, RZ                       // j
pcol_j:
    ISETP.GE P2, R5, R4
    @P2 BRA pcol_j_done
    IMAD R11, R3, 16, R5
    SHL R11, R11, 2
    LDS R12, [R11+2048]              // col[idx][j]
    IMAD R13, R5, 16, R4
    SHL R13, R13, 2
    LDS R14, [R13]                   // dia[j][i]
    FMUL R12, R12, R14
    FSUB R10, R10, R12
    IADD R5, R5, 1
    BRA pcol_j
pcol_j_done:
    IMAD R11, R4, 16, R4
    SHL R11, R11, 2
    LDS R12, [R11]                   // dia[i][i]
    MUFU.RCP R12, R12
    FMUL R10, R10, R12
    STS [R9+2048], R10
    IADD R4, R4, 1
    BRA pcol_i
pcol_done:
    SYNC
pjoin:
    BAR
    MOV R4, RZ
pstore:
    ISETP.GE P1, R4, 16
    @P1 BRA pstore_done
    IADD R5, R4, c[off]
    IMAD R6, R5, c[width], R3
    IADD R6, R6, R2
    ISCADD R6, R6, c[m], 2
    IMAD R8, R4, 16, R3
    SHL R8, R8, 2
    @P0 LDS R7, [R8+1024]
    @P0 STG [R6], R7
    IADD R5, R4, R2
    IMAD R6, R5, c[width], R3
    IADD R6, R6, c[off]
    ISCADD R6, R6, c[m], 2
    @!P0 LDS R7, [R8+2048]
    @!P0 STG [R6], R7
    IADD R4, R4, 1
    BRA pstore
pstore_done:
    EXIT

.kernel lud_internal
.smem 2048                           // perimeter row tile | perimeter col tile
.param m ptr
.param width u32
.param off u32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IADD R4, R2, 1
    SHL R4, R4, 4
    IADD R4, R4, c[off]              // global column base
    IADD R5, R3, 1
    SHL R5, R5, 4
    IADD R5, R5, c[off]              // global row base
    IADD R6, R1, c[off]
    IMAD R7, R6, c[width], R4
    IADD R7, R7, R0
    ISCADD R7, R7, c[m], 2
    LDG R8, [R7]                     // perimeter row element
    IMAD R9, R1, 16, R0
    SHL R9, R9, 2
    STS [R9], R8
    IADD R6, R5, R1
    IMAD R7, R6, c[width], R0
    IADD R7, R7, c[off]
    ISCADD R7, R7, c[m], 2
    LDG R8, [R7]                     // perimeter col element
    STS [R9+1024], R8
    BAR
    MOV R10, 0                       // accumulator (0.0f)
    MOV R11, RZ                      // k
iloop:
    ISETP.GE P0, R11, 16
    @P0 BRA iloop_done
    IMAD R12, R1, 16, R11
    SHL R12, R12, 2
    LDS R13, [R12+1024]              // col[ty][k]
    IMAD R14, R11, 16, R0
    SHL R14, R14, 2
    LDS R15, [R14]                   // row[k][tx]
    FMUL R13, R13, R15
    FADD R10, R10, R13
    IADD R11, R11, 1
    BRA iloop
iloop_done:
    IADD R6, R5, R1
    IMAD R7, R6, c[width], R4
    IADD R7, R7, R0
    ISCADD R7, R7, c[m], 2
    LDG R8, [R7]
    FSUB R8, R8, R10
    STG [R7], R8
    EXIT
)";

class LudApp final : public BenchApp {
 public:
  LudApp() : BenchApp("lud") {
    add_kernels(kAsm);
    std::vector<float> m(kDim * kDim);
    for (std::uint32_t r = 0; r < kDim; ++r) {
      for (std::uint32_t c = 0; c < kDim; ++c) {
        m[r * kDim + c] = detail::init_float(71, r * kDim + c, 0.0f, 1.0f) +
                          (r == c ? static_cast<float>(kDim) : 0.0f);
      }
    }
    add_buffer("m", m.size() * 4, Role::InOut, detail::pack_floats(m));
  }

  void execute(ExecCtx& ctx) const override {
    for (std::uint32_t off = 0; off < kDim; off += kBs) {
      if (!ctx.launch(kernel("lud_diagonal"), {1, 1, 1}, {kBs, 1, 1},
                      {ctx.addr("m"), kDim, off})) {
        return;
      }
      const std::uint32_t rem = (kDim - off) / kBs - 1;
      if (rem == 0) break;
      if (!ctx.launch(kernel("lud_perimeter"), {rem, 1, 1}, {2 * kBs, 1, 1},
                      {ctx.addr("m"), kDim, off})) {
        return;
      }
      if (!ctx.launch(kernel("lud_internal"), {rem, rem, 1}, {kBs, kBs, 1},
                      {ctx.addr("m"), kDim, off})) {
        return;
      }
    }
  }
};

}  // namespace

std::unique_ptr<App> make_lud() { return std::make_unique<LudApp>(); }

}  // namespace gras::workloads
