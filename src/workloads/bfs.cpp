// BFS (Rodinia): frontier-based breadth-first search, two kernels.
//   K1 — every frontier node relaxes its unvisited neighbours (sets their
//        cost and marks them "updating"); the neighbour loop makes this the
//        suite's most divergent kernel (explicit SSY/SYNC regions).
//   K2 — promotes "updating" nodes to the next frontier and raises the
//        continue flag.
// The host loops until the flag stays down (bounded; exceeding the bound is
// classified as Timeout, which is how NVBitFI-style harnesses see a
// non-converging faulty run).
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kNodes = 1024;
constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kMaxHostIters = 40;

constexpr char kAsm[] = R"(
.kernel bfs_k1
.param nodes ptr                    // [n][2]: edge-list start, edge count
.param edges ptr
.param frontier ptr
.param updating ptr
.param visited ptr
.param cost ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2             // node id
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[frontier], 2
    LDG R5, [R4]
    SSY join
    ISETP.EQ P1, R5, RZ
    @P1 BRA skip                    // not in the frontier
    STG [R4], RZ                    // leave the frontier
    SHL R6, R3, 3                   // node record byte offset
    IADD R6, R6, c[nodes]
    LDG R7, [R6]                    // first edge
    LDG R8, [R6+4]                  // edge count
    IADD R8, R7, R8                 // end edge
    ISCADD R9, R3, c[cost], 2
    LDG R10, [R9]                   // my cost
    IADD R10, R10, 1
    SSY nloop_done
nloop:
    ISETP.GE P2, R7, R8
    @P2 BRA nloop_exit
    ISCADD R11, R7, c[edges], 2
    LDG R12, [R11]                  // neighbour id
    ISCADD R13, R12, c[visited], 2
    LDG R14, [R13]
    ISETP.EQ P3, R14, RZ            // not yet visited?
    ISCADD R15, R12, c[cost], 2
    @P3 STG [R15], R10
    MOV R16, 1
    ISCADD R17, R12, c[updating], 2
    @P3 STG [R17], R16
    IADD R7, R7, 1
    BRA nloop
nloop_exit:
    SYNC
nloop_done:
    SYNC
skip:
    SYNC
join:
    EXIT

.kernel bfs_k2
.param frontier ptr
.param updating ptr
.param visited ptr
.param flag ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[updating], 2
    LDG R5, [R4]
    ISETP.NE P1, R5, RZ
    MOV R6, 1
    ISCADD R7, R3, c[frontier], 2
    @P1 STG [R7], R6
    ISCADD R8, R3, c[visited], 2
    @P1 STG [R8], R6
    MOV R9, c[flag]
    @P1 STG [R9], R6
    @P1 STG [R4], RZ
    EXIT
)";

class BfsApp final : public BenchApp {
 public:
  BfsApp() : BenchApp("bfs") {
    add_kernels(kAsm);
    // Deterministic random graph: each node gets 2..5 forward-ish edges.
    std::vector<std::uint32_t> nodes(kNodes * 2);
    std::vector<std::uint32_t> edges;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      const std::uint32_t degree = 2 + detail::init_u32(61, i, 4);
      nodes[i * 2] = static_cast<std::uint32_t>(edges.size());
      nodes[i * 2 + 1] = degree;
      for (std::uint32_t d = 0; d < degree; ++d) {
        edges.push_back(detail::init_u32(62, i * 8 + d, kNodes));
      }
    }
    std::vector<std::uint32_t> frontier(kNodes, 0), visited(kNodes, 0);
    std::vector<std::uint32_t> cost(kNodes, 0xffffffffu);  // -1
    frontier[0] = 1;
    visited[0] = 1;
    cost[0] = 0;
    add_buffer("nodes", nodes.size() * 4, Role::Input, detail::pack_u32(nodes));
    add_buffer("edges", edges.size() * 4, Role::Input, detail::pack_u32(edges));
    add_buffer("frontier", kNodes * 4, Role::Input, detail::pack_u32(frontier));
    add_buffer("updating", kNodes * 4, Role::Scratch);
    add_buffer("visited", kNodes * 4, Role::Input, detail::pack_u32(visited));
    add_buffer("cost", kNodes * 4, Role::InOut, detail::pack_u32(cost));
    add_buffer("flag", 4, Role::Scratch);
  }

  void execute(ExecCtx& ctx) const override {
    const sim::Dim3 grid{kNodes / kBlock, 1, 1}, block{kBlock, 1, 1};
    for (std::uint32_t iter = 0;; ++iter) {
      if (iter >= kMaxHostIters) {
        ctx.mark_timeout();
        return;
      }
      ctx.write_u32("flag", 0, 0);
      if (!ctx.launch(kernel("bfs_k1"), grid, block,
                      {ctx.addr("nodes"), ctx.addr("edges"), ctx.addr("frontier"),
                       ctx.addr("updating"), ctx.addr("visited"), ctx.addr("cost"),
                       kNodes})) {
        return;
      }
      if (!ctx.launch(kernel("bfs_k2"), grid, block,
                      {ctx.addr("frontier"), ctx.addr("updating"), ctx.addr("visited"),
                       ctx.addr("flag"), kNodes})) {
        return;
      }
      if (ctx.read_u32("flag", 0) == 0) break;
    }
  }
};

}  // namespace

std::unique_ptr<App> make_bfs() { return std::make_unique<BfsApp>(); }

}  // namespace gras::workloads
