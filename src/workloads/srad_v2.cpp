// SRADv2 (Rodinia srad_v2): the 2-kernel SRAD variant. The image statistics
// (mean/variance -> q0sqr) are computed on the host each iteration, as in
// Rodinia's srad_v2/srad.cu; srad_cuda_1 computes the directional
// derivatives and the diffusion coefficient with a shared-memory tile,
// srad_cuda_2 applies the update, also tiled.
#include <cmath>
#include <cstring>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kDim = 64;
constexpr std::uint32_t kN = kDim * kDim;
constexpr std::uint32_t kTile = 16;
constexpr std::uint32_t kIters = 2;
constexpr float kLambda = 0.5f;

constexpr char kAsm[] = R"(
.kernel srad2_k1
.smem 1024                          // 16x16 image tile
.param img ptr
.param dn ptr
.param ds ptr
.param dw ptr
.param de ptr
.param cc ptr
.param width u32
.param wm1 u32
.param hm1 u32
.param q0 f32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IMAD R4, R2, 16, R0
    IMAD R5, R3, 16, R1
    IMAD R6, R5, c[width], R4
    ISCADD R7, R6, c[img], 2
    LDG R8, [R7]                    // Ic
    IMAD R9, R1, 16, R0
    SHL R9, R9, 2                   // tile byte slot
    STS [R9], R8
    BAR
    // North: shared when inside the tile, global (clamped) otherwise.
    ISETP.GT P0, R1, RZ
    @P0 LDS R10, [R9-64]
    IADD R11, R5, -1
    IMAX R11, R11, RZ
    IMAD R12, R11, c[width], R4
    ISCADD R12, R12, c[img], 2
    @!P0 LDG R10, [R12]
    // South.
    ISETP.LT P1, R1, 15
    @P1 LDS R13, [R9+64]
    IADD R11, R5, 1
    IMIN R11, R11, c[hm1]
    IMAD R12, R11, c[width], R4
    ISCADD R12, R12, c[img], 2
    @!P1 LDG R13, [R12]
    // West.
    ISETP.GT P2, R0, RZ
    @P2 LDS R14, [R9-4]
    IADD R11, R4, -1
    IMAX R11, R11, RZ
    IMAD R12, R5, c[width], R11
    ISCADD R12, R12, c[img], 2
    @!P2 LDG R14, [R12]
    // East.
    ISETP.LT P3, R0, 15
    @P3 LDS R15, [R9+4]
    IADD R11, R4, 1
    IMIN R11, R11, c[wm1]
    IMAD R12, R5, c[width], R11
    ISCADD R12, R12, c[img], 2
    @!P3 LDG R15, [R12]
    FSUB R10, R10, R8               // dN
    FSUB R13, R13, R8               // dS
    FSUB R14, R14, R8               // dW
    FSUB R15, R15, R8               // dE
    FMUL R16, R10, R10
    FFMA R16, R13, R13, R16
    FFMA R16, R14, R14, R16
    FFMA R16, R15, R15, R16
    FMUL R17, R8, R8
    MUFU.RCP R17, R17
    FMUL R16, R16, R17              // G2
    FADD R18, R10, R13
    FADD R18, R18, R14
    FADD R18, R18, R15
    MUFU.RCP R19, R8
    FMUL R18, R18, R19              // L
    FMUL R20, R16, 0.5f
    FMUL R21, R18, R18
    FMUL R21, R21, 0.0625f
    FSUB R20, R20, R21              // num
    FMUL R21, R18, 0.25f
    FADD R21, R21, 1.0f
    FMUL R21, R21, R21
    MUFU.RCP R21, R21
    FMUL R20, R20, R21              // qsqr
    FSUB R22, R20, c[q0]
    MOV R23, c[q0]
    FADD R24, R23, 1.0f
    FMUL R24, R23, R24
    MUFU.RCP R24, R24
    FMUL R22, R22, R24
    FADD R22, R22, 1.0f
    MUFU.RCP R22, R22
    FMAX R22, R22, 0.0f
    FMIN R22, R22, 1.0f
    ISCADD R25, R6, c[cc], 2
    STG [R25], R22
    ISCADD R25, R6, c[dn], 2
    STG [R25], R10
    ISCADD R25, R6, c[ds], 2
    STG [R25], R13
    ISCADD R25, R6, c[dw], 2
    STG [R25], R14
    ISCADD R25, R6, c[de], 2
    STG [R25], R15
    EXIT

.kernel srad2_k2
.smem 1024                          // 16x16 coefficient tile
.param img ptr
.param dn ptr
.param ds ptr
.param dw ptr
.param de ptr
.param cc ptr
.param width u32
.param wm1 u32
.param hm1 u32
.param lam f32
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    IMAD R4, R2, 16, R0
    IMAD R5, R3, 16, R1
    IMAD R6, R5, c[width], R4
    ISCADD R7, R6, c[cc], 2
    LDG R8, [R7]                    // cC (= cN = cW)
    IMAD R9, R1, 16, R0
    SHL R9, R9, 2
    STS [R9], R8
    BAR
    // cS: shared for interior rows, global (clamped) at the tile edge.
    ISETP.LT P1, R1, 15
    @P1 LDS R10, [R9+64]
    IADD R11, R5, 1
    IMIN R11, R11, c[hm1]
    IMAD R12, R11, c[width], R4
    ISCADD R12, R12, c[cc], 2
    @!P1 LDG R10, [R12]
    // cE.
    ISETP.LT P3, R0, 15
    @P3 LDS R13, [R9+4]
    IADD R11, R4, 1
    IMIN R11, R11, c[wm1]
    IMAD R12, R5, c[width], R11
    ISCADD R12, R12, c[cc], 2
    @!P3 LDG R13, [R12]
    ISCADD R14, R6, c[dn], 2
    LDG R15, [R14]
    ISCADD R14, R6, c[ds], 2
    LDG R16, [R14]
    ISCADD R14, R6, c[dw], 2
    LDG R17, [R14]
    ISCADD R14, R6, c[de], 2
    LDG R18, [R14]
    FMUL R19, R8, R15               // cN*dN
    FFMA R19, R10, R16, R19         // + cS*dS
    FFMA R19, R8, R17, R19          // + cW*dW
    FFMA R19, R13, R18, R19         // + cE*dE
    FMUL R19, R19, 0.25f
    FMUL R19, R19, c[lam]
    ISCADD R20, R6, c[img], 2
    LDG R21, [R20]
    FADD R21, R21, R19
    STG [R20], R21
    EXIT
)";

class SradV2App final : public BenchApp {
 public:
  SradV2App() : BenchApp("srad_v2") {
    add_kernels(kAsm);
    std::vector<float> img(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      // srad_v2 operates on the exp-extracted image directly.
      img[i] = std::exp(detail::init_float(42, i, 0.0f, 1.0f));
    }
    add_buffer("img", kN * 4, Role::InOut, detail::pack_floats(img));
    add_buffer("dn", kN * 4, Role::Scratch);
    add_buffer("ds", kN * 4, Role::Scratch);
    add_buffer("dw", kN * 4, Role::Scratch);
    add_buffer("de", kN * 4, Role::Scratch);
    add_buffer("cc", kN * 4, Role::Scratch);
  }

  void execute(ExecCtx& ctx) const override {
    auto f = [](float v) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &v, 4);
      return bits;
    };
    const sim::Dim3 grid{kDim / kTile, kDim / kTile, 1}, block{kTile, kTile, 1};
    std::vector<std::uint8_t> raw(kN * 4);
    for (std::uint32_t iter = 0; iter < kIters; ++iter) {
      // Host-side statistics, as in Rodinia srad_v2.
      ctx.read_bytes("img", 0, raw);
      if (ctx.aborted()) return;
      float sum = 0.0f, sum2 = 0.0f;
      for (std::uint32_t i = 0; i < kN; ++i) {
        float v;
        std::memcpy(&v, raw.data() + i * 4, 4);
        sum += v;
        sum2 += v * v;
      }
      const float mean = sum / static_cast<float>(kN);
      const float var = sum2 / static_cast<float>(kN) - mean * mean;
      const float q0sqr = var / (mean * mean);

      const std::vector<std::uint32_t> common = {
          ctx.addr("img"), ctx.addr("dn"), ctx.addr("ds"), ctx.addr("dw"),
          ctx.addr("de"),  ctx.addr("cc"), kDim,           kDim - 1,
          kDim - 1};
      std::vector<std::uint32_t> p1 = common;
      p1.push_back(f(q0sqr));
      if (!ctx.launch(kernel("srad2_k1"), grid, block, std::move(p1))) return;
      std::vector<std::uint32_t> p2 = common;
      p2.push_back(f(kLambda));
      if (!ctx.launch(kernel("srad2_k2"), grid, block, std::move(p2))) return;
    }
  }
};

}  // namespace

std::unique_ptr<App> make_srad_v2() { return std::make_unique<SradV2App>(); }

}  // namespace gras::workloads
