// VA — vectorAdd (CUDA SDK): c[i] = a[i] + b[i].
//
// The simplest benchmark of the suite: one kernel, one load-compute-store
// round trip per thread, no shared memory, no divergence beyond the bounds
// guard. Its low register pressure and short residency make it a low-AVF /
// moderate-SVF workload — one side of the paper's SCP-vs-VA trend flip
// (Fig. 1).
#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kN = 4096;
constexpr std::uint32_t kBlock = 256;

constexpr char kAsm[] = R"(
.kernel va_k1
.param a ptr
.param b ptr
.param c ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2          // global element index
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R3, c[b], 2
    LDG R7, [R6]
    FADD R8, R5, R7
    ISCADD R9, R3, c[c], 2
    STG [R9], R8
    EXIT
)";

class VaApp final : public BenchApp {
 public:
  // Non-default sizes get distinct names so campaign caches never collide.
  explicit VaApp(std::uint32_t n)
      : BenchApp(n == kN ? "va" : "va@" + std::to_string(n)), n_(n) {
    add_kernels(kAsm);
    std::vector<float> a(n_), b(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      a[i] = detail::init_float(11, i, -100.0f, 100.0f);
      b[i] = detail::init_float(12, i, -100.0f, 100.0f);
    }
    add_buffer("a", n_ * 4, Role::Input, detail::pack_floats(a));
    add_buffer("b", n_ * 4, Role::Input, detail::pack_floats(b));
    add_buffer("c", n_ * 4, Role::Output);
  }

  void execute(ExecCtx& ctx) const override {
    ctx.launch(kernel("va_k1"), {n_ / kBlock, 1, 1}, {kBlock, 1, 1},
               {ctx.addr("a"), ctx.addr("b"), ctx.addr("c"), n_});
  }

 private:
  std::uint32_t n_;
};

}  // namespace

std::unique_ptr<App> make_va() { return std::make_unique<VaApp>(kN); }

std::unique_ptr<App> make_va_sized(std::uint32_t n) {
  return std::make_unique<VaApp>(n);
}

}  // namespace gras::workloads
