// NW — Needleman-Wunsch (Rodinia needle): dynamic-programming sequence
// alignment over 16x16 blocks processed in anti-diagonal waves.
//   K1 (nw_k1) handles the top-left triangle of block diagonals,
//   K2 (nw_k2) the bottom-right triangle; they share the wavefront core and
//   differ only in how the block coordinates derive from the CTA id,
//   mirroring needle_cuda_shared_1/_2.
// Integer workload; the reference (substitution score) matrix goes through
// the texture path.
#include <string>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kSeqLen = 64;           // alignment dimension
constexpr std::uint32_t kCols = kSeqLen + 1;    // DP matrix is 65x65
constexpr std::uint32_t kBs = 16;
constexpr std::uint32_t kBlocksPerDim = kSeqLen / kBs;  // 4
constexpr std::int32_t kPenalty = 2;

// Shared wavefront core; the per-kernel prefix computes R2 = block index x
// and R3 = block index y from the CTA id. Shared memory: temp[17][17]
// (offset 0) and ref[16][16] (offset 1156).
constexpr char kCore[] = R"(
    SHL R4, R2, 4                    // base_x
    SHL R5, R3, 4                    // base_y
    // Left border column: temp[tid+1][0].
    IADD R6, R5, R0
    IADD R6, R6, 1
    IMAD R6, R6, c[cols], R4
    ISCADD R6, R6, c[mat], 2
    LDG R7, [R6]
    IADD R8, R0, 1
    IMAD R8, R8, 17, RZ
    SHL R8, R8, 2
    STS [R8], R7
    // Top border row: temp[0][tid+1].
    IMAD R6, R5, c[cols], R4
    IADD R6, R6, R0
    IADD R6, R6, 1
    ISCADD R6, R6, c[mat], 2
    LDG R7, [R6]
    IADD R8, R0, 1
    SHL R8, R8, 2
    STS [R8], R7
    // Corner (thread 0 only).
    ISETP.NE P0, R0, RZ
    IMAD R6, R5, c[cols], R4
    ISCADD R6, R6, c[mat], 2
    @!P0 LDG R7, [R6]
    @!P0 STS [0], R7
    // Reference tile.
    MOV R9, RZ
rload:
    ISETP.GE P1, R9, 16
    @P1 BRA rload_done
    IADD R6, R5, R9
    IADD R6, R6, 1
    IMAD R6, R6, c[cols], R4
    IADD R6, R6, R0
    IADD R6, R6, 1
    ISCADD R6, R6, c[ref], 2
    LDT R7, [R6]
    IMAD R8, R9, 16, R0
    SHL R8, R8, 2
    STS [R8+1156], R7
    IADD R9, R9, 1
    BRA rload
rload_done:
    BAR
    // Forward wavefront over the block's anti-diagonals.
    MOV R9, RZ                       // m
wave1:
    ISETP.GE P1, R9, 16
    @P1 BRA wave1_done
    ISETP.LE P2, R0, R9
    IADD R10, R0, 1                  // t_x
    ISUB R11, R9, R0
    IADD R11, R11, 1                 // t_y
    IADD R12, R11, -1
    IMAD R13, R12, 17, R10
    IADD R13, R13, -1
    SHL R13, R13, 2
    @P2 LDS R14, [R13]               // temp[ty-1][tx-1]
    IADD R15, R10, -1
    IMAD R16, R12, 16, R15
    SHL R16, R16, 2
    @P2 LDS R17, [R16+1156]          // ref[ty-1][tx-1]
    @P2 IADD R14, R14, R17
    IMAD R18, R11, 17, R15
    SHL R18, R18, 2
    @P2 LDS R19, [R18]               // temp[ty][tx-1]
    @P2 ISUB R19, R19, c[penalty]
    IMAD R20, R12, 17, R10
    SHL R20, R20, 2
    @P2 LDS R21, [R20]               // temp[ty-1][tx]
    @P2 ISUB R21, R21, c[penalty]
    @P2 IMAX R14, R14, R19
    @P2 IMAX R14, R14, R21
    IMAD R22, R11, 17, R10
    SHL R22, R22, 2
    @P2 STS [R22], R14
    BAR
    IADD R9, R9, 1
    BRA wave1
wave1_done:
    // Backward wavefront.
    MOV R9, 14
wave2:
    ISETP.LT P1, R9, RZ
    @P1 BRA wave2_done
    ISETP.LE P2, R0, R9
    ISUB R10, R0, R9
    IADD R10, R10, 16                // t_x = tid + 16 - m
    MOV R11, 16
    ISUB R11, R11, R0                // t_y = 16 - tid
    IADD R12, R11, -1
    IMAD R13, R12, 17, R10
    IADD R13, R13, -1
    SHL R13, R13, 2
    @P2 LDS R14, [R13]
    IADD R15, R10, -1
    IMAD R16, R12, 16, R15
    SHL R16, R16, 2
    @P2 LDS R17, [R16+1156]
    @P2 IADD R14, R14, R17
    IMAD R18, R11, 17, R15
    SHL R18, R18, 2
    @P2 LDS R19, [R18]
    @P2 ISUB R19, R19, c[penalty]
    IMAD R20, R12, 17, R10
    SHL R20, R20, 2
    @P2 LDS R21, [R20]
    @P2 ISUB R21, R21, c[penalty]
    @P2 IMAX R14, R14, R19
    @P2 IMAX R14, R14, R21
    IMAD R22, R11, 17, R10
    SHL R22, R22, 2
    @P2 STS [R22], R14
    BAR
    IADD R9, R9, -1
    BRA wave2
wave2_done:
    // Write the block back.
    MOV R9, RZ
wstore:
    ISETP.GE P1, R9, 16
    @P1 BRA wstore_done
    IADD R6, R5, R9
    IADD R6, R6, 1
    IMAD R6, R6, c[cols], R4
    IADD R6, R6, R0
    IADD R6, R6, 1
    ISCADD R6, R6, c[mat], 2
    IADD R8, R9, 1
    IMAD R8, R8, 17, R0
    IADD R8, R8, 1
    SHL R8, R8, 2
    LDS R7, [R8]
    STG [R6], R7
    IADD R9, R9, 1
    BRA wstore
wstore_done:
    EXIT
)";

std::string kernel_source() {
  std::string src;
  src += R"(
.kernel nw_k1
.smem 2180
.param ref ptr
.param mat ptr
.param cols u32
.param penalty u32
.param i u32
.param bw u32
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, R1                       // block index x = bx
    MOV R3, c[i]
    IADD R3, R3, -1
    ISUB R3, R3, R1                  // block index y = i - 1 - bx
)";
  src += kCore;
  src += R"(
.kernel nw_k2
.smem 2180
.param ref ptr
.param mat ptr
.param cols u32
.param penalty u32
.param i u32
.param bw u32
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c[bw]
    ISUB R2, R2, c[i]
    IADD R2, R2, R1                  // block index x = bx + bw - i
    MOV R3, c[bw]
    IADD R3, R3, -1
    ISUB R3, R3, R1                  // block index y = bw - 1 - bx
)";
  src += kCore;
  return src;
}

class NwApp final : public BenchApp {
 public:
  NwApp() : BenchApp("nw") {
    add_kernels(kernel_source());
    const std::uint32_t cells = kCols * kCols;
    std::vector<std::uint32_t> ref(cells, 0), mat(cells, 0);
    for (std::uint32_t i = 0; i < cells; ++i) {
      ref[i] = detail::init_u32(81, i, 10);  // substitution scores 0..9
    }
    for (std::uint32_t i = 1; i < kCols; ++i) {
      mat[i * kCols] = static_cast<std::uint32_t>(-static_cast<std::int32_t>(i) * kPenalty);
      mat[i] = static_cast<std::uint32_t>(-static_cast<std::int32_t>(i) * kPenalty);
    }
    add_buffer("ref", cells * 4, Role::Input, detail::pack_u32(ref));
    add_buffer("mat", cells * 4, Role::InOut, detail::pack_u32(mat));
  }

  void execute(ExecCtx& ctx) const override {
    const std::uint32_t penalty = static_cast<std::uint32_t>(kPenalty);
    for (std::uint32_t i = 1; i <= kBlocksPerDim; ++i) {
      if (!ctx.launch(kernel("nw_k1"), {i, 1, 1}, {kBs, 1, 1},
                      {ctx.addr("ref"), ctx.addr("mat"), kCols, penalty, i,
                       kBlocksPerDim})) {
        return;
      }
    }
    for (std::uint32_t i = kBlocksPerDim - 1; i >= 1; --i) {
      if (!ctx.launch(kernel("nw_k2"), {i, 1, 1}, {kBs, 1, 1},
                      {ctx.addr("ref"), ctx.addr("mat"), kCols, penalty, i,
                       kBlocksPerDim})) {
        return;
      }
    }
  }
};

}  // namespace

std::unique_ptr<App> make_nw() { return std::make_unique<NwApp>(); }

}  // namespace gras::workloads
