// K-Means (Rodinia kmeans): two kernels.
//   K1 invert_mapping — transposes the feature matrix (point-major ->
//                       feature-major) for coalesced access.
//   K2 kmeansPoint    — assigns every point to its nearest cluster centre.
// Cluster centres are recomputed on the host between iterations, exactly as
// Rodinia's kmeans_cuda.cu does. Centres are read through the texture path
// (Rodinia binds them to a texture).
#include <cstring>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

constexpr std::uint32_t kPoints = 1024;
constexpr std::uint32_t kFeatures = 8;
constexpr std::uint32_t kClusters = 5;
constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kIters = 2;

constexpr char kAsm[] = R"(
.kernel kmeans_invert
.param fin ptr                      // point-major features [n][f]
.param fout ptr                     // feature-major features [f][n]
.param n u32
.param nf u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2             // point index
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    MOV R4, RZ                      // feature j = 0
    IMUL R5, R3, c[nf]              // row base in fin
inv_loop:
    ISETP.GE P1, R4, c[nf]
    @P1 BRA inv_done
    IADD R6, R5, R4
    ISCADD R6, R6, c[fin], 2
    LDG R7, [R6]
    IMAD R8, R4, c[n], R3           // j*n + point
    ISCADD R8, R8, c[fout], 2
    STG [R8], R7
    IADD R4, R4, 1
    BRA inv_loop
inv_done:
    EXIT

.kernel kmeans_point
.param feat ptr                     // feature-major [f][n]
.param clusters ptr                 // centres [k][f]
.param membership ptr
.param n u32
.param nf u32
.param nk u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2             // point index
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    MOV R4, RZ                      // best cluster
    MOV R5, 0x7f7fffff              // best distance = FLT_MAX
    MOV R6, RZ                      // cluster k
k_loop:
    ISETP.GE P1, R6, c[nk]
    @P1 BRA k_done
    MOV R7, 0                       // dist accumulator (0.0f)
    MOV R8, RZ                      // feature j
    IMUL R9, R6, c[nf]              // centre row base
f_loop:
    ISETP.GE P2, R8, c[nf]
    @P2 BRA f_done
    IMAD R10, R8, c[n], R3
    ISCADD R10, R10, c[feat], 2
    LDG R11, [R10]                  // feature value
    IADD R12, R9, R8
    ISCADD R12, R12, c[clusters], 2
    LDT R13, [R12]                  // centre value (texture path)
    FSUB R14, R11, R13
    FFMA R7, R14, R14, R7
    IADD R8, R8, 1
    BRA f_loop
f_done:
    FSETP.LT P3, R7, R5
    @P3 MOV R5, R7
    @P3 MOV R4, R6
    IADD R6, R6, 1
    BRA k_loop
k_done:
    ISCADD R15, R3, c[membership], 2
    STG [R15], R4
    EXIT
)";

class KmeansApp final : public BenchApp {
 public:
  KmeansApp() : BenchApp("kmeans") {
    add_kernels(kAsm);
    features_.resize(kPoints * kFeatures);
    for (std::uint32_t i = 0; i < features_.size(); ++i) {
      features_[i] = detail::init_float(51, i, 0.0f, 10.0f);
    }
    // Initial centres: the first k points (Rodinia's initialization).
    std::vector<float> centres(kClusters * kFeatures);
    for (std::uint32_t k = 0; k < kClusters; ++k) {
      for (std::uint32_t j = 0; j < kFeatures; ++j) {
        centres[k * kFeatures + j] = features_[k * kFeatures + j];
      }
    }
    add_buffer("features", features_.size() * 4, Role::Input, detail::pack_floats(features_));
    add_buffer("features_t", features_.size() * 4, Role::Scratch);
    add_buffer("clusters", centres.size() * 4, Role::Input, detail::pack_floats(centres));
    add_buffer("membership", kPoints * 4, Role::Output);
  }

  void execute(ExecCtx& ctx) const override {
    const sim::Dim3 grid{kPoints / kBlock, 1, 1}, block{kBlock, 1, 1};
    if (!ctx.launch(kernel("kmeans_invert"), grid, block,
                    {ctx.addr("features"), ctx.addr("features_t"), kPoints, kFeatures})) {
      return;
    }
    std::vector<std::uint8_t> raw(kPoints * 4);
    for (std::uint32_t iter = 0; iter < kIters; ++iter) {
      if (!ctx.launch(kernel("kmeans_point"), grid, block,
                      {ctx.addr("features_t"), ctx.addr("clusters"),
                       ctx.addr("membership"), kPoints, kFeatures, kClusters})) {
        return;
      }
      if (iter + 1 == kIters) break;
      // Host recomputes centres from the original features + membership.
      ctx.read_bytes("membership", 0, raw);
      if (ctx.aborted()) return;
      std::vector<float> sums(kClusters * kFeatures, 0.0f);
      std::vector<std::uint32_t> counts(kClusters, 0);
      for (std::uint32_t p = 0; p < kPoints; ++p) {
        std::uint32_t m;
        std::memcpy(&m, raw.data() + p * 4, 4);
        if (m >= kClusters) m = 0;  // defensive: fault-corrupted membership
        counts[m] += 1;
        for (std::uint32_t j = 0; j < kFeatures; ++j) {
          sums[m * kFeatures + j] += features_[p * kFeatures + j];
        }
      }
      for (std::uint32_t k = 0; k < kClusters; ++k) {
        if (counts[k] == 0) continue;
        for (std::uint32_t j = 0; j < kFeatures; ++j) {
          sums[k * kFeatures + j] /= static_cast<float>(counts[k]);
        }
      }
      const auto packed = detail::pack_floats(sums);
      ctx.write_bytes("clusters", 0, packed);
    }
  }

 private:
  std::vector<float> features_;
};

}  // namespace

std::unique_ptr<App> make_kmeans() { return std::make_unique<KmeansApp>(); }

}  // namespace gras::workloads
