// Prometheus text exposition for the telemetry registry, plus the minimal
// HTTP listener that serves it.
//
// render_registry() turns a Registry::snapshot() into exposition text
// (https://prometheus.io/docs/instrumenting/exposition_formats/): counters
// become `<prefix><name>_total`, gauges `<prefix><name>`, histograms a full
// `_bucket{le=...}` series using the registry's log2 buckets — bucket i holds
// values with bit_width == i, so its upper bound is 2^i - 1.
//
// MetricsHttpServer is deliberately tiny: one accept thread, GET-only,
// Connection: close, no TLS, no keep-alive — enough for a Prometheus scraper
// or `curl` against a campaign that is already listening on a trusted
// network. It lives in common (not fabric) so plain `gras campaign` runs can
// expose /metrics without linking the fabric.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/metrics_registry.h"

namespace gras::promtext {

/// Registry-style name ("fabric.records.received") to a valid Prometheus
/// metric name: `prefix` + name with every char outside [a-zA-Z0-9_:]
/// mapped to '_'. The default prefix namespaces all gras metrics.
std::string metric_name(std::string_view raw, std::string_view prefix = "gras_");

/// Escapes a label value per the exposition format: \\, \" and \n.
std::string escape_label_value(std::string_view v);

/// Incremental exposition-text builder. family() emits the # HELP / # TYPE
/// header; sample() emits one `name{labels} value` line.
class Writer {
 public:
  using Labels = std::vector<std::pair<std::string_view, std::string_view>>;

  /// `type` is one of "counter", "gauge", "histogram", "untyped".
  void family(std::string_view name, std::string_view help, std::string_view type);
  void sample(std::string_view name, const Labels& labels, double value);
  void sample(std::string_view name, const Labels& labels, std::uint64_t value);
  void sample(std::string_view name, const Labels& labels, std::int64_t value);

  const std::string& text() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void sample_prefix(std::string_view name, const Labels& labels);
  std::string out_;
};

/// Renders a full registry snapshot as exposition text. Counter `a.b` becomes
/// `<prefix>a_b_total`, gauge `a.b` becomes `<prefix>a_b`, histogram `a.b`
/// becomes `<prefix>a_b` with cumulative `_bucket{le="2^i - 1"}` samples
/// (trailing empty buckets elided), `_bucket{le="+Inf"}`, `_sum` and `_count`.
std::string render_registry(const std::vector<telemetry::MetricValue>& snapshot,
                            std::string_view prefix = "gras_");

/// Serves `GET /metrics` (and `/`) with the string returned by the render
/// callback; anything else is 404. The callback runs on the accept thread and
/// must be thread-safe against the rest of the process.
class MetricsHttpServer {
 public:
  using Render = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds `host:port` (port 0 = ephemeral, see port()) and starts the accept
  /// thread. Returns false and fills `error` on failure.
  bool start(const std::string& host, std::uint16_t port, Render render,
             std::string* error);
  /// The bound port; 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }
  void stop();

 private:
  void serve();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Render render_;
  std::thread thread_;
};

/// Publishes `port` to `path` via the write-then-rename idiom the fabric uses
/// for --port-file: scripts can poll the path and never observe a torn write.
/// Returns false and fills `error` on failure.
bool write_port_file(const std::filesystem::path& path, std::uint16_t port,
                     std::string* error);

}  // namespace gras::promtext
