#include "src/common/metrics_registry.h"

#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace gras::telemetry {

void Histogram::observe(std::uint64_t v) noexcept {
  const auto b = static_cast<std::size_t>(std::bit_width(v));  // 0..64
  buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile in a population of n (1-based, ceil convention).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Bucket b holds values with bit_width == b: upper bound 2^b - 1.
      return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets, 0);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  using Metric = std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                              std::unique_ptr<Histogram>>;
  mutable std::mutex mu;
  std::map<std::string, Metric, std::less<>> metrics;
};

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaky: outlives every worker thread
  return *r;
}

Registry::Impl* Registry::impl() {
  static Impl* i = new Impl;
  return i;
}

const Registry::Impl* Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

namespace {

template <typename T>
T& get_or_create(Registry::Impl& impl, std::string_view name, const char* kind) {
  const std::lock_guard<std::mutex> lock(impl.mu);
  auto it = impl.metrics.find(name);
  if (it == impl.metrics.end()) {
    it = impl.metrics
             .emplace(std::string(name), std::make_unique<T>())
             .first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  if (slot == nullptr) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind than " + kind);
  }
  return **slot;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create<Counter>(*impl(), name, "counter");
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create<Gauge>(*impl(), name, "gauge");
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create<Histogram>(*impl(), name, "histogram");
}

std::vector<MetricValue> Registry::snapshot() const {
  const Impl& i = *impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  std::vector<MetricValue> out;
  out.reserve(i.metrics.size());
  for (const auto& [name, metric] : i.metrics) {
    MetricValue v;
    v.name = name;
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      v.kind = MetricValue::Kind::Counter;
      v.value = static_cast<std::int64_t>((*c)->value());
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      v.kind = MetricValue::Kind::Gauge;
      v.value = (*g)->value();
    } else {
      const Histogram& h = *std::get<std::unique_ptr<Histogram>>(metric);
      v.kind = MetricValue::Kind::Histogram;
      v.value = static_cast<std::int64_t>(h.count());
      v.sum = h.sum();
      v.p50 = h.quantile(0.5);
      v.p99 = h.quantile(0.99);
      v.max = h.max();
      v.buckets = h.bucket_counts();
    }
    out.push_back(std::move(v));
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, std::int64_t>> Registry::flat_snapshot() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const MetricValue& v : snapshot()) {
    switch (v.kind) {
      case MetricValue::Kind::Counter:
      case MetricValue::Kind::Gauge:
        out.emplace_back(v.name, v.value);
        break;
      case MetricValue::Kind::Histogram:
        out.emplace_back(v.name + ".count", v.value);
        out.emplace_back(v.name + ".sum", static_cast<std::int64_t>(v.sum));
        out.emplace_back(v.name + ".p50", static_cast<std::int64_t>(v.p50));
        out.emplace_back(v.name + ".p99", static_cast<std::int64_t>(v.p99));
        out.emplace_back(v.name + ".max", static_cast<std::int64_t>(v.max));
        break;
    }
  }
  return out;
}

namespace {

// Names are [a-z0-9._-] by convention, but the registry does not enforce it;
// escape so a hostile name can never produce malformed JSON.
void append_json_escaped(std::string& out, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (c < 0x20) {
      out += "\\u00";
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    } else {
      out += ch;
    }
  }
}

}  // namespace

std::string Registry::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : flat_snapshot()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += '}';
  return out;
}

void Registry::reset() {
  Impl& i = *impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, metric] : i.metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      (*g)->reset();
    } else {
      std::get<std::unique_ptr<Histogram>>(metric)->reset();
    }
  }
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace gras::telemetry
