#include "src/common/bitops.h"

#include <bit>

namespace gras {

void flip_bit(std::span<std::uint8_t> bytes, std::size_t bit_index) noexcept {
  const std::size_t byte = bit_index >> 3;
  const unsigned bit = static_cast<unsigned>(bit_index & 7u);
  if (byte < bytes.size()) bytes[byte] = static_cast<std::uint8_t>(bytes[byte] ^ (1u << bit));
}

bool read_bit(std::span<const std::uint8_t> bytes, std::size_t bit_index) noexcept {
  const std::size_t byte = bit_index >> 3;
  const unsigned bit = static_cast<unsigned>(bit_index & 7u);
  if (byte >= bytes.size()) return false;
  return (bytes[byte] >> bit) & 1u;
}

std::size_t popcount(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : bytes) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

}  // namespace gras
