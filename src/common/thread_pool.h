// Minimal work-stealing-free thread pool for fault-injection campaign
// fan-out. Each campaign sample is an independent simulation, so a simple
// shared-counter parallel-for is both sufficient and cache-friendly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gras {

/// Fixed-size thread pool with a parallel-for primitive.
///
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// parallel_for on the calling thread.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Worker ordinal of the calling thread: 0 for any thread that submits
  /// work (the caller participates in parallel_for), 1..N for the pool's
  /// spawned workers ("gras-worker-N"). Stable for the thread's lifetime.
  static std::size_t worker_index() noexcept;

  /// Runs body(i) for i in [0, count). Blocks until all iterations finish.
  /// The calling thread participates in the work. Iterations are handed out
  /// through an atomic counter, so ordering is nondeterministic — bodies
  /// must derive any randomness from `i`, never from shared state.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> pending_;
  bool stop_ = false;
};

}  // namespace gras
