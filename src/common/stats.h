// Statistics for fault-injection campaigns.
//
// The paper (CLUSTER'24, §II-A) follows Leveugle et al., "Statistical fault
// injection: Quantified error and confidence" (DATE'09): with n = 3,000
// uniformly sampled single-bit injections the estimated fault-effect
// proportions carry a 99% confidence interval of about +/-2.35 percentage
// points. This header implements exactly that machinery: proportion
// estimates, normal-approximation and Wilson confidence intervals, and the
// (finite-population) sample-size formula used to justify n.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gras {

/// Two-sided confidence interval for a proportion.
struct ProportionCi {
  double estimate = 0.0;  ///< point estimate p-hat
  double lower = 0.0;     ///< lower bound, clamped to [0,1]
  double upper = 0.0;     ///< upper bound, clamped to [0,1]
  /// Half-width (margin of error) of the interval.
  double margin() const noexcept { return (upper - lower) / 2.0; }
};

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0,1)).
double normal_quantile(double p) noexcept;

/// z value for a two-sided confidence level (e.g. 0.99 -> 2.5758...).
double z_for_confidence(double confidence) noexcept;

/// Normal-approximation ("Wald") CI for `successes` out of `trials`.
/// This is the interval form used by Leveugle et al. and the paper.
/// With zero trials the proportion is unknown: the interval is [0, 1]
/// (margin 0.5), never the degenerate zero-width interval that would
/// misreport perfect precision to early-stop rules and progress sinks.
ProportionCi wald_interval(std::uint64_t successes, std::uint64_t trials,
                           double confidence) noexcept;

/// Wilson score interval: better behaved for proportions near 0 or 1, which
/// is the common case for AVF measurements (most faults are masked).
/// Zero trials yield the all-uncertainty interval [0, 1], as above.
ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double confidence) noexcept;

/// Wilson interval over real-valued (weighted) counts — the two-level
/// pruned estimator feeds it an effective sample size (Kish) and a scaled
/// success weight. Hardened for degenerate inputs so no NaN/inf can reach a
/// margin comparison or a JSONL sink: non-finite arguments or trials <= 0
/// yield [0, 1]; successes are clamped into [0, trials]; trials may be
/// fractional (weighted counts < 1 behave like a sub-sample, not a crash).
ProportionCi wilson_interval_real(double successes, double trials,
                                  double confidence) noexcept;

/// Leveugle et al. sample size for estimating a proportion with margin `e`
/// at confidence `confidence`, drawing from a population of `population`
/// fault sites (finite population correction). `p` is the a-priori worst
/// case proportion (0.5 maximizes the requirement).
std::uint64_t required_samples(double e, double confidence, std::uint64_t population,
                               double p = 0.5) noexcept;

/// Margin of error achieved by `trials` samples at `confidence` for the
/// worst-case proportion p = 0.5 and an effectively infinite population.
/// required margins: margin_for_samples(3000, 0.99) ~= 0.0235.
double margin_for_samples(std::uint64_t trials, double confidence) noexcept;

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gras
