#include "src/common/build_info.h"

// CMake injects GRAS_GIT_SHA / GRAS_BUILD_TYPE / GRAS_CXX_FLAGS on this
// translation unit only (set_source_files_properties), so touching the git
// HEAD never rebuilds anything but this file.
#ifndef GRAS_GIT_SHA
#define GRAS_GIT_SHA "unknown"
#endif
#ifndef GRAS_BUILD_TYPE
#define GRAS_BUILD_TYPE "unknown"
#endif
#ifndef GRAS_CXX_FLAGS
#define GRAS_CXX_FLAGS ""
#endif

#if defined(__clang__)
#define GRAS_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define GRAS_COMPILER "gcc " __VERSION__
#else
#define GRAS_COMPILER "unknown"
#endif

namespace gras {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{GRAS_GIT_SHA, GRAS_COMPILER, GRAS_BUILD_TYPE,
                              GRAS_CXX_FLAGS};
  return info;
}

std::string build_summary() {
  const BuildInfo& b = build_info();
  std::string out = "gras ";
  out += b.git_sha;
  out += ' ';
  out += b.build_type;
  out += " (";
  out += b.compiler;
  out += ')';
  return out;
}

std::string build_json() {
  const BuildInfo& b = build_info();
  std::string out = "{\"git_sha\":\"";
  out += json_escape(b.git_sha);
  out += "\",\"compiler\":\"";
  out += json_escape(b.compiler);
  out += "\",\"build_type\":\"";
  out += json_escape(b.build_type);
  out += "\",\"flags\":\"";
  out += json_escape(b.flags);
  out += "\"}";
  return out;
}

}  // namespace gras
