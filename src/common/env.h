// Environment-variable knobs shared by the benchmark harnesses:
//   GRAS_INJECTIONS      samples per fault-injection campaign (default 300;
//                        the paper uses 3,000 per kernel/structure)
//   GRAS_CONFIG          "gv100-scaled" (default) or "gv100"
//   GRAS_THREADS         campaign worker threads (default: hardware concurrency)
//   GRAS_SEED            campaign master seed (default 2024)
//   GRAS_NO_CHECKPOINT   non-zero disables launch-boundary checkpointing, so
//                        every sample re-simulates from cycle 0 (A/B
//                        validation of the fast-forward path)
//   GRAS_BACKEND         "functional" (default) runs each sample's fault-free
//                        prefix launches on the fast functional backend and
//                        hands off to the timing core at the injection
//                        launch's boundary; "timing" forces pure
//                        cycle-approximate simulation (A/B escape hatch,
//                        mirroring GRAS_NO_CHECKPOINT)
//   GRAS_FUNC_VALIDATE   non-zero makes every functional→timing handoff
//                        verify the architectural memory image against the
//                        golden run's hash (cheap; on in tests/CI smokes)
//   GRAS_BATCH           samples per batched simulator instance (default 1 =
//                        unbatched): K samples injecting into the same launch
//                        share their fault-free prefix via copy-on-write
//                        forks (DESIGN.md §12); results stay bit-identical.
//                        The CLI --batch flag overrides this.
//   GRAS_CACHE           campaign memoization directory (default .gras_cache)
//   GRAS_JOURNAL_DIR     sample-journal directory (default $GRAS_CACHE/journals)
//   GRAS_JOURNAL_FSYNC   0 disables the per-batch fsync of sample journals
//                        (faster, but a power cut may lose the tail; a plain
//                        SIGKILL still loses nothing)
//   GRAS_TRACE           path to write a Chrome/Perfetto trace-event JSON
//                        file at campaign end; unset/empty/"0" (default)
//                        disables tracing entirely (span cost: one relaxed
//                        atomic load). The CLI --trace flag sets this.
//   GRAS_TRACE_BUF       trace span slots per thread (default 262144 = 2^18,
//                        24 bytes each); overflow drops spans and counts
//                        them in the trace's otherData.dropped
#pragma once

#include <cstdint>
#include <string>

namespace gras {

std::uint64_t env_u64(const char* name, std::uint64_t fallback);
std::string env_str(const char* name, const std::string& fallback);

/// GRAS_INJECTIONS with its default.
std::uint64_t env_injections(std::uint64_t fallback = 300);
/// GRAS_SEED with its default.
std::uint64_t env_seed(std::uint64_t fallback = 2024);
/// GRAS_THREADS with its default (0 = hardware concurrency).
std::uint64_t env_threads(std::uint64_t fallback = 0);
/// GRAS_CONFIG with its default.
std::string env_config(const std::string& fallback = "gv100-scaled");
/// True when GRAS_NO_CHECKPOINT is set to a non-zero value.
bool env_no_checkpoint();
/// GRAS_BACKEND with its default ("functional"); the value is not validated
/// here — sim::backend_from_name rejects unknown names.
std::string env_backend(const std::string& fallback = "functional");
/// True when GRAS_FUNC_VALIDATE is set to a non-zero value.
bool env_func_validate();
/// GRAS_BATCH with its default (1 = unbatched); 0 is clamped to 1.
std::uint64_t env_batch(std::uint64_t fallback = 1);
/// GRAS_CACHE with its default.
std::string env_cache_dir(const std::string& fallback = ".gras_cache");
/// GRAS_JOURNAL_DIR, defaulting to "<env_cache_dir()>/journals".
std::string env_journal_dir();
/// False only when GRAS_JOURNAL_FSYNC is set to 0.
bool env_journal_fsync();
/// GRAS_TRACE output path; empty string when tracing is disabled
/// (unset, empty, or the literal "0").
std::string env_trace_path();

}  // namespace gras
