// Environment-variable knobs shared by the benchmark harnesses:
//   GRAS_INJECTIONS      samples per fault-injection campaign (default 300;
//                        the paper uses 3,000 per kernel/structure)
//   GRAS_CONFIG          "gv100-scaled" (default) or "gv100"
//   GRAS_THREADS         campaign worker threads (default: hardware concurrency)
//   GRAS_SEED            campaign master seed (default 2024)
//   GRAS_NO_CHECKPOINT   non-zero disables launch-boundary checkpointing, so
//                        every sample re-simulates from cycle 0 (A/B
//                        validation of the fast-forward path)
#pragma once

#include <cstdint>
#include <string>

namespace gras {

std::uint64_t env_u64(const char* name, std::uint64_t fallback);
std::string env_str(const char* name, const std::string& fallback);

/// GRAS_INJECTIONS with its default.
std::uint64_t env_injections(std::uint64_t fallback = 300);
/// GRAS_SEED with its default.
std::uint64_t env_seed(std::uint64_t fallback = 2024);
/// GRAS_THREADS with its default (0 = hardware concurrency).
std::uint64_t env_threads(std::uint64_t fallback = 0);
/// GRAS_CONFIG with its default.
std::string env_config(const std::string& fallback = "gv100-scaled");
/// True when GRAS_NO_CHECKPOINT is set to a non-zero value.
bool env_no_checkpoint();

}  // namespace gras
