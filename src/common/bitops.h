// Bit-level helpers used by the fault injectors: every injectable hardware
// structure in gras is ultimately a byte array, and a single-bit fault is a
// flip of one bit inside it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gras {

/// Flips bit `bit` (0 = LSB) of `value` and returns the result.
constexpr std::uint32_t flip_bit(std::uint32_t value, unsigned bit) noexcept {
  return value ^ (std::uint32_t{1} << (bit & 31u));
}

/// Flips bit `bit_index` of a byte array viewed as a little-endian bit string
/// (bit 0 = LSB of byte 0).
void flip_bit(std::span<std::uint8_t> bytes, std::size_t bit_index) noexcept;

/// Reads bit `bit_index` of a byte array (same numbering as flip_bit).
bool read_bit(std::span<const std::uint8_t> bytes, std::size_t bit_index) noexcept;

/// Number of set bits in a byte span.
std::size_t popcount(std::span<const std::uint8_t> bytes) noexcept;

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// True if `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace gras
