// Low-overhead span tracing for campaign phase attribution (DESIGN.md §10).
//
// A Span is an RAII timer: construct it at the top of a phase (restore /
// fast-forward / execute / compare / classify / journal-append / fsync / …)
// and its duration is recorded when it goes out of scope. Completed spans
// land in a per-thread ring buffer with no locks on the hot path: each
// thread appends only to its own pre-allocated buffer and publishes the
// slot with one release store, so tracing a campaign perturbs it as little
// as possible. When tracing is disabled (the default; see GRAS_TRACE in
// env.h) a Span costs one relaxed atomic load and nothing is recorded.
//
// Collected spans export as Chrome trace-event JSON ("X" complete events,
// one per line) directly loadable in https://ui.perfetto.dev. The same
// module parses its own files back and renders the deterministic per-phase
// breakdown behind `gras stats <trace>`.
//
// Naming conventions (docs/observability.md): span names are static,
// lower-case, dot-separated ("journal.fsync"), with the category naming the
// subsystem ("phase", "sim", "journal", "pool"). Dynamic context (sample
// index, launch ordinal) travels in the numeric `arg`, never in the name —
// names must be static strings because the hot path stores only pointers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gras::trace {

/// True while a trace session is recording. One relaxed atomic load.
bool enabled() noexcept;

/// Clears previously recorded spans and starts recording.
void start();
/// Stops recording; recorded spans stay available for collect()/write_file().
void stop();
/// Stops recording and discards every recorded span and drop counter.
void reset();

/// Nanoseconds since the current session's start() (0 when never started).
std::uint64_t now_ns() noexcept;

/// Spans recorded but thrown away because a thread's ring buffer was full
/// (see GRAS_TRACE_BUF). Exported traces carry this in otherData.
std::uint64_t dropped_events() noexcept;

/// Labels the calling thread's rows in trace exports ("gras-worker-3");
/// threads that never call this are labeled "thread-<tid>". The thread-pool
/// workers set their label to their worker name.
void set_thread_name(const std::string& name);

/// RAII scoped timer. Records one complete event at destruction; records
/// nothing (and never touches the clock) when tracing is disabled.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "phase") noexcept
      : Span(name, cat, nullptr, 0) {}
  /// `arg_name`/`arg` attach one numeric argument to the event
  /// (e.g. {"index": 42}); both must be static/outlive the session.
  Span(const char* name, const char* cat, const char* arg_name,
       std::uint64_t arg) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  ///< null when tracing was disabled at construction
  const char* cat_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_;
};

/// One recorded span, decoded for export/analysis. `tid` is a small
/// session-local thread ordinal (not an OS id) so exports and stats are
/// reproducible run to run.
struct Event {
  std::string name;
  std::string cat;
  std::string thread;  ///< thread label (set_thread_name)
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string arg_name;  ///< empty when the span carried no argument
  std::uint64_t arg = 0;
};

/// Snapshot of every span recorded so far, sorted by (tid, start, -dur) so
/// each thread's events appear in nesting order. Safe to call while other
/// threads are still recording (their unpublished tails are simply absent).
std::vector<Event> collect();

/// Serializes events (plus build info, metric counters and thread-name
/// metadata) as Chrome trace-event JSON. Every event object carries
/// ph/ts/pid/tid/name; "X" spans add dur/cat/args.
std::string to_json(std::span<const Event> events);
/// collect() + to_json() to a file. False when the file cannot be written.
bool write_file(const std::filesystem::path& path);

/// Per-phase aggregate over a set of events. `self_ns` is exclusive time:
/// `total_ns` minus the time spent in spans nested inside (same thread), so
/// summing self_ns over all phases never double-counts nested phases.
struct PhaseTotal {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Aggregates events into per-name totals, sorted by self_ns descending
/// (ties: name ascending). Events must be collect()-ordered.
std::vector<PhaseTotal> phase_totals(std::span<const Event> events);

/// A trace file parsed back: the spans, the counter events, and the
/// metadata written alongside them.
struct ParsedTrace {
  std::vector<Event> events;                                  ///< "X" spans
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< "C" events
  std::string build;                                          ///< otherData.build
  std::uint64_t dropped = 0;                                  ///< otherData.dropped
};

/// Parses a trace file written by write_file (line-oriented). nullopt when
/// the file is missing or not one of ours.
std::optional<ParsedTrace> read_file(const std::filesystem::path& path);

/// Renders the `gras stats` tables for a parsed trace: per-phase breakdown
/// (count, total, self, share of traced time) and the counter table.
/// Deterministic: byte-identical output for byte-identical input.
std::string render_stats(const ParsedTrace& trace);

}  // namespace gras::trace
