// Build provenance stamped into the binary at compile time, so every
// campaign artifact (journal header, trace file, JSONL progress stream,
// BENCH_*.json) is attributable to the exact binary that produced it.
//
// The git SHA, build type and flags are injected by CMake as compile
// definitions on build_info.cpp only (see src/common/CMakeLists.txt); when
// the source tree is not a git checkout they fall back to "unknown". The
// SHA is captured at configure time — rebuilding after new commits without
// re-running CMake can leave it one configure behind, which the "-dirty"
// suffix (uncommitted changes at configure time) makes visible.
#pragma once

#include <string>
#include <string_view>

namespace gras {

struct BuildInfo {
  std::string_view git_sha;     ///< short SHA, "-dirty" suffixed; "unknown" outside git
  std::string_view compiler;    ///< e.g. "gcc 13.2.0"
  std::string_view build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
  std::string_view flags;       ///< CXX flags the build type compiled with
};

const BuildInfo& build_info() noexcept;

/// One-line summary: "gras <sha> <build_type> <compiler>" — the form
/// embedded in journal headers and printed by `gras --version`.
std::string build_summary();

/// The same fields as one JSON object (trace files, BENCH_*.json).
std::string build_json();

}  // namespace gras
