#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace gras {

double normal_quantile(double p) noexcept {
  // Peter Acklam's inverse-normal approximation.
  if (p <= 0.0) return -1e9;
  if (p >= 1.0) return 1e9;
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double z_for_confidence(double confidence) noexcept {
  return normal_quantile(0.5 + confidence / 2.0);
}

namespace {

// Interval carrying no information: zero observations constrain nothing,
// so the honest answer is [0, 1], not the zero-width [0, 0] that would
// satisfy any early-stop margin comparison immediately.
constexpr ProportionCi kNoInformation{0.0, 0.0, 1.0};

}  // namespace

ProportionCi wald_interval(std::uint64_t successes, std::uint64_t trials,
                           double confidence) noexcept {
  ProportionCi ci;
  if (trials == 0) return kNoInformation;
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  const double z = z_for_confidence(confidence);
  const double half = z * std::sqrt(p * (1 - p) / static_cast<double>(trials));
  ci.estimate = p;
  ci.lower = std::max(0.0, p - half);
  ci.upper = std::min(1.0, p + half);
  return ci;
}

ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double confidence) noexcept {
  if (trials == 0) return kNoInformation;
  return wilson_interval_real(static_cast<double>(successes),
                              static_cast<double>(trials), confidence);
}

ProportionCi wilson_interval_real(double successes, double trials,
                                  double confidence) noexcept {
  if (!std::isfinite(successes) || !std::isfinite(trials) || !std::isfinite(confidence) ||
      trials <= 0.0) {
    return kNoInformation;
  }
  const double n = trials;
  const double p = std::clamp(successes / n, 0.0, 1.0);
  const double z = z_for_confidence(std::clamp(confidence, 0.0, 1.0));
  const double z2 = z * z;
  const double denom = 1 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n));
  ProportionCi ci;
  ci.estimate = p;
  ci.lower = std::max(0.0, center - half);
  ci.upper = std::min(1.0, center + half);
  if (!std::isfinite(ci.lower) || !std::isfinite(ci.upper)) return kNoInformation;
  return ci;
}

std::uint64_t required_samples(double e, double confidence, std::uint64_t population,
                               double p) noexcept {
  // n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))   (Leveugle et al., DATE'09)
  if (population == 0 || e <= 0.0) return 0;
  const double z = z_for_confidence(confidence);
  const double big_n = static_cast<double>(population);
  const double n = big_n / (1.0 + e * e * (big_n - 1.0) / (z * z * p * (1.0 - p)));
  return static_cast<std::uint64_t>(std::ceil(n));
}

double margin_for_samples(std::uint64_t trials, double confidence) noexcept {
  if (trials == 0) return 1.0;
  const double z = z_for_confidence(confidence);
  return z * std::sqrt(0.25 / static_cast<double>(trials));
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace gras
