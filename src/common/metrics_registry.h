// Process-wide runtime telemetry: named counters, gauges and histograms.
//
// Complements trace.h: spans answer "where does wall-clock go", the
// registry answers "how much work happened" — simulated cycles, cache
// traffic, injector arms/give-ups, journal records and fsyncs, pool tasks.
// Metrics are always on: one relaxed atomic add per event, cheap enough
// that campaign throughput is unaffected (the fed events are per-launch or
// per-sample, never per-cycle).
//
// Names are static, lower-case, dot-separated ("journal.fsyncs"); the first
// component names the subsystem. Hot paths must cache the reference
// returned by counter()/gauge()/histogram() (a function-local static is the
// usual idiom) — registration takes a lock, updates do not. Registered
// references stay valid for the life of the process; reset() zeroes values
// but never invalidates references.
//
// Not part of this registry: the paper's AVF/SVF reliability metrics (see
// src/metrics/) — those are results, these are runtime introspection.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gras::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. worker count, queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed distribution of non-negative samples. observe() is two
/// relaxed adds plus an atomic max; quantiles come back as the upper bound
/// of the containing power-of-two bucket (coarse by design — these feed
/// dashboards, not statistics).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;  ///< bucket i holds v with bit_width(v) == i

  void observe(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Upper bound of the bucket containing quantile `q` in [0, 1]; 0 when empty.
  std::uint64_t quantile(double q) const noexcept;
  /// Raw per-bucket counts (size kBuckets); bucket i covers bit_width == i,
  /// i.e. values in [2^(i-1), 2^i - 1] (bucket 0 is exactly 0).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One registry entry flattened for snapshots/export.
struct MetricValue {
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::int64_t value = 0;      ///< counter/gauge value; histogram count
  std::uint64_t sum = 0;       ///< histogram only
  std::uint64_t p50 = 0, p99 = 0, max = 0;  ///< histogram only
  /// Histogram only: raw per-bucket counts (bucket i holds values with
  /// bit_width == i). Feeds exporters that want real bucket boundaries
  /// (Prometheus text format) rather than the coarse p50/p99 summary.
  std::vector<std::uint64_t> buckets;
};

/// The process-wide registry. Thread-safe; a leaky singleton so metric
/// updates from late-exiting threads never touch a destroyed object.
class Registry {
 public:
  static Registry& instance();

  /// Returns the metric registered under `name`, creating it on first use.
  /// Throws std::logic_error when `name` is already registered as a
  /// different metric kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Every registered metric, sorted by name.
  std::vector<MetricValue> snapshot() const;
  /// Snapshot flattened to (name, value) scalars, sorted by name: counters
  /// and gauges one entry each (gauges keep their sign), histograms expanded
  /// to name.count/.sum/.p50/.p99/.max. Feeds trace "C" events, JSONL and
  /// the fabric's per-worker stats reports.
  std::vector<std::pair<std::string, std::int64_t>> flat_snapshot() const;
  /// flat_snapshot() as one JSON object: {"sim.cycles":123,...}.
  std::string snapshot_json() const;

  /// Zeroes every metric (references stay valid). Benches and tests call
  /// this between campaigns to get per-run deltas.
  void reset();

  struct Impl;  ///< public only so the .cpp's file-local helpers can name it

 private:
  Registry() = default;
  Impl* impl();
  const Impl* impl() const;
};

/// Shorthands for Registry::instance().counter(name) etc.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

}  // namespace gras::telemetry
