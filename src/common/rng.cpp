#include "src/common/rng.h"

namespace gras {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; SplitMix64 output never yields four
  // consecutive zeros from any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::for_sample(std::uint64_t seed, std::uint64_t index) noexcept {
  std::uint64_t sm = seed;
  const std::uint64_t mixed_seed = splitmix64(sm);
  std::uint64_t sm2 = index ^ 0x2545f4914f6cdd1dull;
  const std::uint64_t mixed_index = splitmix64(sm2);
  return Rng{mixed_seed ^ rotl(mixed_index, 17)};
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace gras
