// Plain-text table rendering for the benchmark harnesses that regenerate the
// paper's tables and figures. Figures are rendered as aligned numeric tables
// (one row per x-axis entry, one column per series), which is the faithful
// machine-readable form of a bar chart.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gras {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  /// Formats a proportion as a percentage string, e.g. 0.1234 -> "12.34".
  static std::string pct(double proportion, int precision = 2);

  /// Renders with a header separator; columns padded to widest cell.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gras
