#include "src/common/promtext.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

namespace gras::promtext {

std::string metric_name(std::string_view raw, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + raw.size());
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void Writer::family(std::string_view name, std::string_view help,
                    std::string_view type) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void Writer::sample_prefix(std::string_view name, const Labels& labels) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += k;
      out_ += "=\"";
      out_ += escape_label_value(v);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
}

void Writer::sample(std::string_view name, const Labels& labels, double value) {
  sample_prefix(name, labels);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out_ += buf;
  out_ += '\n';
}

void Writer::sample(std::string_view name, const Labels& labels,
                    std::uint64_t value) {
  sample_prefix(name, labels);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out_ += buf;
  out_ += '\n';
}

void Writer::sample(std::string_view name, const Labels& labels,
                    std::int64_t value) {
  sample_prefix(name, labels);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  out_ += buf;
  out_ += '\n';
}

std::string render_registry(const std::vector<telemetry::MetricValue>& snapshot,
                            std::string_view prefix) {
  Writer w;
  for (const telemetry::MetricValue& m : snapshot) {
    switch (m.kind) {
      case telemetry::MetricValue::Kind::Counter: {
        const std::string name = metric_name(m.name, prefix) + "_total";
        w.family(name, "registry counter " + m.name, "counter");
        w.sample(name, {}, static_cast<std::uint64_t>(m.value));
        break;
      }
      case telemetry::MetricValue::Kind::Gauge: {
        const std::string name = metric_name(m.name, prefix);
        w.family(name, "registry gauge " + m.name, "gauge");
        w.sample(name, {}, m.value);
        break;
      }
      case telemetry::MetricValue::Kind::Histogram: {
        const std::string name = metric_name(m.name, prefix);
        w.family(name, "registry histogram " + m.name + " (log2 buckets)",
                 "histogram");
        // Bucket i holds values with bit_width == i: upper bound 2^i - 1.
        // Emit cumulative counts up to the last non-empty bucket, then +Inf.
        std::size_t last = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (m.buckets[b] != 0) last = b;
        }
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b <= last && b < m.buckets.size(); ++b) {
          cum += m.buckets[b];
          const std::uint64_t le =
              b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
          char le_buf[32];
          std::snprintf(le_buf, sizeof le_buf, "%" PRIu64, le);
          w.sample(name + "_bucket", {{"le", le_buf}}, cum);
        }
        w.sample(name + "_bucket", {{"le", "+Inf"}},
                 static_cast<std::uint64_t>(m.value));
        w.sample(name + "_sum", {}, m.sum);
        w.sample(name + "_count", {}, static_cast<std::uint64_t>(m.value));
        break;
      }
    }
  }
  return w.take();
}

namespace {

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status, std::string_view body) {
  char head[160];
  std::snprintf(head, sizeof head,
                "HTTP/1.1 %s\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, body.size());
  send_all(fd, head);
  send_all(fd, body);
}

// Reads until the end of the request head ("\r\n\r\n") or a small cap; the
// body (there should be none for GET) is ignored. Returns false on timeout
// or close before a full head arrived.
bool read_request_head(int fd, std::string& head) {
  head.clear();
  char buf[1024];
  while (head.size() < 8192) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, /*timeout_ms=*/2000) <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

bool MetricsHttpServer::start(const std::string& host, std::uint16_t port,
                              Render render, std::string* error) {
  stop();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string bind_host = host.empty() ? "0.0.0.0" : host;
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad metrics host '" + bind_host + "'";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  // SO_REUSEADDR: a restarted coordinator rebinds its metrics port
  // immediately, same as the fabric listener.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  render_ = std::move(render);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void MetricsHttpServer::serve() {
  static telemetry::Counter& c_scrapes = telemetry::counter("metrics.scrapes");
  std::string head;
  while (true) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, /*timeout_ms=*/200);
    if (pr < 0 && errno != EINTR) return;
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen fd closed by stop()
    // One request per connection, handled inline: scrapers are rare and a
    // stuck client only delays the next scrape by the read timeout.
    if (read_request_head(fd, head)) {
      const bool get = head.rfind("GET ", 0) == 0;
      const std::size_t path_end = head.find(' ', 4);
      const std::string path =
          get && path_end != std::string::npos ? head.substr(4, path_end - 4) : "";
      if (!get) {
        send_response(fd, "405 Method Not Allowed", "method not allowed\n");
      } else if (path == "/metrics" || path == "/") {
        c_scrapes.add();
        send_response(fd, "200 OK", render_ ? render_() : "");
      } else {
        send_response(fd, "404 Not Found", "not found (try /metrics)\n");
      }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  // Closing the listen fd makes the accept thread's accept() fail and exit.
  const int fd = listen_fd_;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
  render_ = nullptr;
}

bool write_port_file(const std::filesystem::path& path, std::uint16_t port,
                     std::string* error) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    f << port << '\n';
    if (!f.good()) {
      if (error != nullptr) *error = "cannot write " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) *error = ec.message();
    return false;
  }
  return true;
}

}  // namespace gras::promtext
