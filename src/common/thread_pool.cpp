#include "src/common/thread_pool.h"

#include <exception>

namespace gras {

struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex m;
  std::condition_variable finished;
  std::exception_ptr error;
  std::mutex error_m;

  // Claims and runs iterations until the batch is drained; returns when no
  // work is left to claim.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard lock(error_m);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard lock(m);
        finished.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t spawned = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      batch = pending_.front();
      // Leave the batch in the queue so other workers can join it; the
      // submitting thread removes it once the batch completes.
      if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
        pending_.pop_front();
        continue;
      }
    }
    batch->drain();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  {
    std::lock_guard lock(mutex_);
    pending_.push_back(batch);
  }
  cv_.notify_all();
  batch->drain();
  {
    std::unique_lock lock(batch->m);
    batch->finished.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
  }
  {
    std::lock_guard lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (*it == batch) {
        pending_.erase(it);
        break;
      }
    }
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace gras
