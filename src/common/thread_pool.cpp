#include "src/common/thread_pool.h"

#include <exception>
#include <string>

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras {
namespace {

thread_local std::size_t t_worker_index = 0;

// Kernel thread names (comm) are capped at 15 chars + NUL on Linux;
// "gras-worker-99" fits, longer indices get truncated rather than dropped.
void name_os_thread(const std::string& name) {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#elif defined(__APPLE__)
  pthread_setname_np(name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace

struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex m;
  std::condition_variable finished;
  std::exception_ptr error;
  std::mutex error_m;

  // Claims and runs iterations until the batch is drained; returns when no
  // work is left to claim.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      static telemetry::Counter& tasks = telemetry::counter("pool.tasks");
      tasks.add();
      try {
        const trace::Span span("pool.task", "pool", "iteration", i);
        (*body)(i);
      } catch (...) {
        std::lock_guard lock(error_m);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard lock(m);
        finished.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t spawned = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] {
      const std::string name = "gras-worker-" + std::to_string(i + 1);
      t_worker_index = i + 1;
      name_os_thread(name);
      trace::set_thread_name(name);
      worker_loop();
    });
  }
  telemetry::gauge("pool.workers").set(static_cast<std::int64_t>(spawned) + 1);
}

std::size_t ThreadPool::worker_index() noexcept { return t_worker_index; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      batch = pending_.front();
      // Leave the batch in the queue so other workers can join it; the
      // submitting thread removes it once the batch completes.
      if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
        pending_.pop_front();
        continue;
      }
    }
    batch->drain();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  static telemetry::Counter& batches = telemetry::counter("pool.batches");
  batches.add();
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  {
    std::lock_guard lock(mutex_);
    pending_.push_back(batch);
  }
  cv_.notify_all();
  batch->drain();
  {
    std::unique_lock lock(batch->m);
    batch->finished.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
  }
  {
    std::lock_guard lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (*it == batch) {
        pending_.erase(it);
        break;
      }
    }
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace gras
