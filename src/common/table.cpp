#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gras {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double proportion, int precision) {
  return num(proportion * 100.0, precision);
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << cell;
      if (c + 1 < header_.size()) out << std::string(width[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace gras
