// Deterministic, splittable random number generation.
//
// A statistical fault-injection campaign must be reproducible bit-for-bit no
// matter how many worker threads execute it, so every campaign sample derives
// its own independent stream from (campaign seed, sample index) instead of
// sharing one sequential generator.
//
// The generator is xoshiro256** seeded through SplitMix64, the scheme
// recommended by the xoshiro authors for deriving independent streams.
#pragma once

#include <cstdint>

namespace gras {

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Used for seeding and as a cheap one-shot hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ull) noexcept;

  /// Derives the independent stream for sample `index` of a campaign with
  /// seed `seed` (mixes both through SplitMix64 before seeding).
  static Rng for_sample(std::uint64_t seed, std::uint64_t index) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be non-zero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace gras
