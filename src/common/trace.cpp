#include "src/common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "src/common/build_info.h"
#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/table.h"

namespace gras::trace {
namespace {

/// One slot of a thread's ring buffer: pointers to static strings only, so
/// recording never allocates.
struct RawEvent {
  const char* name;
  const char* cat;
  const char* arg_name;  ///< null when the span carried no argument
  std::uint64_t arg;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// Single-producer (owning thread) / snapshot-consumer (collect) buffer.
/// The owner appends at slots[count] and publishes with a release store;
/// collect() reads count with acquire and only touches published slots.
struct ThreadBuffer {
  std::vector<RawEvent> slots;  ///< sized once, on the owner's first record
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;
  std::mutex name_mu;
  std::string name;
};

struct Global {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_ns{0};
  std::size_t capacity;
  std::mutex mu;  ///< guards buffers/next_tid (registration + collect only)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;

  Global() : capacity(static_cast<std::size_t>(env_u64("GRAS_TRACE_BUF", 1u << 18))) {
    if (capacity == 0) capacity = 1;
  }
};

Global& g() {
  static Global* global = new Global;  // leaky: worker threads may outlive main
  return *global;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Global& gl = g();
    const std::lock_guard<std::mutex> lock(gl.mu);
    b->tid = gl.next_tid++;
    gl.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record(const char* name, const char* cat, const char* arg_name,
            std::uint64_t arg, std::uint64_t start, std::uint64_t dur) {
  ThreadBuffer& b = local_buffer();
  if (b.slots.empty()) b.slots.resize(g().capacity);  // owner thread only
  const std::size_t n = b.count.load(std::memory_order_relaxed);
  if (n >= b.slots.size()) {
    b.dropped.fetch_add(1, std::memory_order_relaxed);
    // Mirrored into the registry so drops show up on /metrics and JSONL, not
    // only in the Perfetto export's otherData.dropped field.
    static telemetry::Counter& c_dropped = telemetry::counter("trace.dropped");
    c_dropped.add();
    return;
  }
  b.slots[n] = RawEvent{name, cat, arg_name, arg, start, dur};
  b.count.store(n + 1, std::memory_order_release);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Orders events into per-thread nesting order: a parent sorts before its
/// children (same start: longer first).
void sort_events(std::vector<Event>& events) {
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;
  });
}

// ---- Trace-file parsing helpers (line-oriented over our own writer). ----

/// Value of `"key":"..."` in `line` (JSON-unescaped), or nullopt.
std::optional<std::string> find_str(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = at + pat.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out += line[++i];
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;
}

/// Value of `"key":<number>` in `line`, or nullopt.
std::optional<double> find_num(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return std::nullopt;
  const char* begin = line.c_str() + at + pat.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return v;
}

std::uint64_t us_to_ns(double us) {
  return us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

}  // namespace

bool enabled() noexcept {
  return g().enabled.load(std::memory_order_relaxed);
}

void start() {
  Global& gl = g();
  {
    const std::lock_guard<std::mutex> lock(gl.mu);
    for (const auto& b : gl.buffers) {
      b->count.store(0, std::memory_order_relaxed);
      b->dropped.store(0, std::memory_order_relaxed);
    }
  }
  gl.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  gl.enabled.store(true, std::memory_order_release);
}

void stop() { g().enabled.store(false, std::memory_order_release); }

void reset() {
  Global& gl = g();
  gl.enabled.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(gl.mu);
  for (const auto& b : gl.buffers) {
    b->count.store(0, std::memory_order_relaxed);
    b->dropped.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t now_ns() noexcept {
  const std::uint64_t epoch = g().epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) return 0;
  return steady_ns() - epoch;
}

std::uint64_t dropped_events() noexcept {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  std::uint64_t total = 0;
  for (const auto& b : gl.buffers) total += b->dropped.load(std::memory_order_relaxed);
  return total;
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lock(b.name_mu);
  b.name = name;
}

Span::Span(const char* name, const char* cat, const char* arg_name,
           std::uint64_t arg) noexcept
    : name_(nullptr), cat_(cat), arg_name_(arg_name), arg_(arg), start_(0) {
  if (!enabled()) return;
  name_ = name;
  start_ = now_ns();
}

Span::~Span() {
  if (name_ == nullptr) return;
  record(name_, cat_, arg_name_, arg_, start_, now_ns() - start_);
}

std::vector<Event> collect() {
  Global& gl = g();
  std::vector<Event> out;
  {
    const std::lock_guard<std::mutex> lock(gl.mu);
    for (const auto& b : gl.buffers) {
      const std::size_t n = b->count.load(std::memory_order_acquire);
      std::string label;
      {
        const std::lock_guard<std::mutex> name_lock(b->name_mu);
        label = b->name;
      }
      if (label.empty()) label = "thread-" + std::to_string(b->tid);
      for (std::size_t i = 0; i < n; ++i) {
        const RawEvent& raw = b->slots[i];
        Event e;
        e.name = raw.name;
        e.cat = raw.cat;
        e.thread = label;
        e.tid = b->tid;
        e.start_ns = raw.start_ns;
        e.dur_ns = raw.dur_ns;
        if (raw.arg_name != nullptr) e.arg_name = raw.arg_name;
        e.arg = raw.arg;
        out.push_back(std::move(e));
      }
    }
  }
  sort_events(out);
  return out;
}

std::string to_json(std::span<const Event> events) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\n";
  out += "\"otherData\":{\"build\":\"" + json_escape(build_summary()) +
         "\",\"dropped\":" + std::to_string(dropped_events()) + "},\n";
  out += "\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  const int pid = static_cast<int>(::getpid());

  // Thread-name metadata first, one per distinct tid. Every event object —
  // metadata and counters included — carries ph/ts/pid/tid/name so schema
  // validators can treat the stream uniformly.
  std::uint32_t last_tid = ~std::uint32_t{0};
  for (const Event& e : events) {  // events are tid-sorted
    if (e.tid == last_tid) continue;
    last_tid = e.tid;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  pid, e.tid, json_escape(e.thread).c_str());
    emit(buf);
  }
  for (const Event& e : events) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%u,"
                  "\"name\":\"%s\",\"cat\":\"%s\"",
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, pid, e.tid,
                  json_escape(e.name).c_str(), json_escape(e.cat).c_str());
    std::string line = buf;
    if (!e.arg_name.empty()) {
      std::snprintf(buf, sizeof buf, ",\"args\":{\"%s\":%" PRIu64 "}",
                    json_escape(e.arg_name).c_str(), e.arg);
      line += buf;
    }
    line += '}';
    emit(line);
  }
  // Final value of every registry metric, as counter events: a Perfetto
  // track per counter, and the raw material of the `gras stats` table.
  const std::uint64_t ts = now_ns();
  for (const auto& [name, value] : telemetry::Registry::instance().flat_snapshot()) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"name\":\"%s\","
                  "\"args\":{\"value\":%" PRId64 "}}",
                  static_cast<double>(ts) / 1000.0, pid, json_escape(name).c_str(),
                  value);
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

bool write_file(const std::filesystem::path& path) {
  const std::vector<Event> events = collect();
  const std::string json = to_json(events);
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<PhaseTotal> phase_totals(std::span<const Event> events) {
  std::map<std::string, PhaseTotal> agg;
  struct Open {
    const Event* event;
    std::uint64_t end_ns;
    std::uint64_t child_ns = 0;
  };
  std::vector<Open> stack;
  const auto finalize = [&](const Open& open) {
    const std::uint64_t nested = std::min(open.child_ns, open.event->dur_ns);
    agg[open.event->name].self_ns += open.event->dur_ns - nested;
  };
  std::uint32_t tid = ~std::uint32_t{0};
  for (const Event& e : events) {
    if (e.tid != tid) {  // new thread: drain the previous thread's stack
      for (const Open& open : stack) finalize(open);
      stack.clear();
      tid = e.tid;
    }
    while (!stack.empty() && stack.back().end_ns <= e.start_ns) {
      finalize(stack.back());
      stack.pop_back();
    }
    if (!stack.empty()) stack.back().child_ns += e.dur_ns;
    PhaseTotal& t = agg[e.name];
    t.name = e.name;
    ++t.count;
    t.total_ns += e.dur_ns;
    stack.push_back(Open{&e, e.start_ns + e.dur_ns});
  }
  for (const Open& open : stack) finalize(open);

  std::vector<PhaseTotal> out;
  out.reserve(agg.size());
  for (auto& [name, total] : agg) out.push_back(std::move(total));
  std::sort(out.begin(), out.end(), [](const PhaseTotal& a, const PhaseTotal& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return a.name < b.name;
  });
  return out;
}

std::optional<ParsedTrace> read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("{\"displayTimeUnit\":\"ns\"", 0) != 0) {
    return std::nullopt;
  }
  ParsedTrace out;
  std::map<std::uint32_t, std::string> thread_names;
  while (std::getline(in, line)) {
    if (line.rfind("\"otherData\":", 0) == 0) {
      if (const auto b = find_str(line, "build")) out.build = *b;
      if (const auto d = find_num(line, "dropped")) {
        out.dropped = static_cast<std::uint64_t>(*d);
      }
      continue;
    }
    const auto ph = find_str(line, "ph");
    if (!ph) continue;
    const auto name = find_str(line, "name");
    const auto tid = find_num(line, "tid");
    if (!name || !tid) continue;
    if (*ph == "M") {
      if (*name == "thread_name") {
        // "args":{"name":"..."} — the label is the "name" key after "args".
        const std::size_t args_at = line.find("\"args\":");
        if (args_at != std::string::npos) {
          const std::string rest = line.substr(args_at);
          if (const auto label = find_str(rest, "name")) {
            thread_names[static_cast<std::uint32_t>(*tid)] = *label;
          }
        }
      }
    } else if (*ph == "C") {
      if (const auto value = find_num(line, "value")) {
        out.counters.emplace_back(*name, static_cast<std::uint64_t>(*value));
      }
    } else if (*ph == "X") {
      const auto ts = find_num(line, "ts");
      const auto dur = find_num(line, "dur");
      if (!ts || !dur) continue;
      Event e;
      e.name = *name;
      if (const auto cat = find_str(line, "cat")) e.cat = *cat;
      e.tid = static_cast<std::uint32_t>(*tid);
      e.start_ns = us_to_ns(*ts);
      e.dur_ns = us_to_ns(*dur);
      out.events.push_back(std::move(e));
    }
  }
  for (Event& e : out.events) {
    const auto it = thread_names.find(e.tid);
    e.thread = it != thread_names.end() ? it->second
                                        : "thread-" + std::to_string(e.tid);
  }
  sort_events(out.events);
  return out;
}

std::string render_stats(const ParsedTrace& trace) {
  std::string out;
  if (!trace.build.empty()) out += "build: " + trace.build + "\n";
  out += "events: " + std::to_string(trace.events.size()) +
         ", dropped: " + std::to_string(trace.dropped) + "\n";

  const std::vector<PhaseTotal> phases = phase_totals(trace.events);
  std::uint64_t traced_self_ns = 0;
  for (const PhaseTotal& p : phases) traced_self_ns += p.self_ns;
  TextTable table({"Phase", "Count", "Total ms", "Self ms", "Self %"});
  for (const PhaseTotal& p : phases) {
    const double share = traced_self_ns == 0
                             ? 0.0
                             : static_cast<double>(p.self_ns) /
                                   static_cast<double>(traced_self_ns);
    table.add_row({p.name, std::to_string(p.count),
                   TextTable::num(static_cast<double>(p.total_ns) / 1e6, 3),
                   TextTable::num(static_cast<double>(p.self_ns) / 1e6, 3),
                   TextTable::pct(share, 1)});
  }
  out += table.render();

  if (!trace.counters.empty()) {
    TextTable counters({"Counter", "Value"});
    for (const auto& [name, value] : trace.counters) {
      counters.add_row({name, std::to_string(value)});
    }
    out += counters.render();
  }
  return out;
}

}  // namespace gras::trace
