#include "src/common/env.h"

#include <cstdlib>

namespace gras {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::uint64_t env_injections(std::uint64_t fallback) { return env_u64("GRAS_INJECTIONS", fallback); }
std::uint64_t env_seed(std::uint64_t fallback) { return env_u64("GRAS_SEED", fallback); }
std::uint64_t env_threads(std::uint64_t fallback) { return env_u64("GRAS_THREADS", fallback); }
std::string env_config(const std::string& fallback) { return env_str("GRAS_CONFIG", fallback); }
bool env_no_checkpoint() { return env_u64("GRAS_NO_CHECKPOINT", 0) != 0; }
std::string env_backend(const std::string& fallback) { return env_str("GRAS_BACKEND", fallback); }
bool env_func_validate() { return env_u64("GRAS_FUNC_VALIDATE", 0) != 0; }
std::uint64_t env_batch(std::uint64_t fallback) {
  const std::uint64_t v = env_u64("GRAS_BATCH", fallback);
  return v == 0 ? 1 : v;
}
std::string env_cache_dir(const std::string& fallback) { return env_str("GRAS_CACHE", fallback); }
std::string env_journal_dir() {
  return env_str("GRAS_JOURNAL_DIR", env_cache_dir() + "/journals");
}
bool env_journal_fsync() { return env_u64("GRAS_JOURNAL_FSYNC", 1) != 0; }
std::string env_trace_path() {
  std::string path = env_str("GRAS_TRACE", "");
  if (path == "0") path.clear();
  return path;
}

}  // namespace gras
