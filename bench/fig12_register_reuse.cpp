// Figure 12: the register-reuse analyzer. The paper's example: a fault in
// register R0 of instruction #4 must affect every subsequent instruction
// that reads R0 until it is rewritten (instructions #5 and #7), which
// single-instruction software-level fault models miss.
//
// This bench reproduces the paper's SASS listing, marks the affected
// instructions, and then quantifies register reuse across the entire
// benchmark suite: the average number of downstream readers per register
// write, i.e. how much a one-shot source-operand fault model understates a
// real fault's reach.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/assembler/assembler.h"

namespace {

// Faithful transcription of the paper's Fig. 12 listing (the addresses in
// comments are the paper's instruction offsets).
constexpr char kFig12[] = R"(
.kernel paper_fig12
.param c140 u32
.param c144 u32
.param c148 u32
.param c14c u32
    S2R R0, SR_CTAID.X           // #1 [0x00033c08]
    S2R R3, SR_TID.X             // #2 [0x00033c10]
    IMAD R4, R0, c[c14c], R3     // #3 [0x00033c18]
    ISCADD R3, R4, c[c140], 2    // #4 [0x00033c20]
    ISCADD R2, R4, c[c144], 2    // #5 [0x00033c28]
    LDG R3, [R3]                 // #6 [0x00033c30]
    ISCADD R0, R4, c[c148], 2    // #7 [0x00033c38]
    LDG R2, [R2]                 // #8 [0x00033c40]
    FADD R3, R0, R2              // #9 [0x00033c48]
    STG [R0], R3                 // #10 [0x00033c50]
    EXIT
)";

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 12 — Register-reuse analyzer");

  const auto kernel = assembler::assemble_kernel(kFig12);
  // The paper faults R4 as written by #3 (its figure labels the ISCADD
  // consumers #4, #5 and #7 as the affected set; note the paper text calls
  // the faulted register "R0 in instruction #4" referring to the destination
  // field R3/R4 of the ISCADD — we analyze the R4 web, which matches the
  // circled occurrences).
  const analysis::ReuseSite site = analysis::analyze_reuse(kernel, 2, 4);
  std::printf("Fault site: instruction #%zu, register R%d\n",
              site.instr_index + 1, site.reg);
  std::printf("Affected readers until rewrite: ");
  for (std::size_t i : site.affected) std::printf("#%zu ", i + 1);
  std::printf("\n\n%s\n", analysis::reuse_listing(kernel, site).c_str());

  TextTable table({"App", "Kernel", "Avg readers per register write"});
  double total = 0.0;
  std::size_t count = 0;
  for (auto& ctx : bench.apps()) {
    for (const isa::Kernel& k : ctx.app->kernels()) {
      const double reuse = analysis::average_reuse(k);
      total += reuse;
      count += 1;
      table.add_row({bench::Bench::display_name(ctx.app->name()), k.name,
                     TextTable::num(reuse, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Suite average: %.2f downstream readers per register write — every one\n"
              "of them is missed by a fault model that corrupts a single dynamic\n"
              "instruction only (paper §V-B).\n",
              total / static_cast<double>(count));
  return 0;
}
