// Figure 5: AVF of the on-chip memory structures (L1D + L1T + L2, bottom)
// vs SVF-LD (load-destination-only software injection, top), per
// application. The paper finds these memory-restricted comparisons even
// more erratic than the register-file ones: a majority of pairs flip.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 5 — AVF-Cache (bottom) vs SVF-LD (top), % of injections");

  TextTable table({"App", "AVF-Cache %", "SDC", "T/O", "DUE", "SVF-LD %", "SDC", "T/O",
                   "DUE"});
  std::vector<analysis::TrendPoint> points;
  for (auto& ctx : bench.apps()) {
    const metrics::AppReliability rel = bench.reliability(ctx, /*with_svf_ld=*/true);
    const metrics::Breakdown cache = rel.avf_cache(bench.bits());
    const metrics::Breakdown ld = rel.svf_ld();
    const std::string name = bench::Bench::display_name(ctx.app->name());
    table.add_row({name, bench::pct(cache.value()), bench::pct(cache.sdc),
                   bench::pct(cache.timeout), bench::pct(cache.due),
                   bench::pct(ld.value()), bench::pct(ld.sdc), bench::pct(ld.timeout),
                   bench::pct(ld.due)});
    points.push_back({name, cache.value(), ld.value()});
  }
  std::printf("%s\n", table.render().c_str());
  const auto trends = analysis::count_trends(points);
  std::printf("Pairs: %llu consistent, %llu opposite (paper: 23 / 32 — majority flip)\n",
              static_cast<unsigned long long>(trends.consistent),
              static_cast<unsigned long long>(trends.opposite));
  return 0;
}
