// Extension: detection-only duplication (DMR) vs correction (TMR).
//
// The paper's case study hardens with TMR (§IV). Related work it cites
// covers cheaper duplication-based schemes that can only *detect*. This
// bench runs both transforms over representative kernels and compares where
// the fault-effect probability mass goes:
//   base: SDC-heavy;
//   DMR:  SDCs become DUEs (detected, not corrected) at ~2x cost;
//   TMR:  SDCs become Masked (corrected) at ~3x cost, DUEs grow.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/orchestrator/cache.h"
#include "src/harden/dmr.h"
#include "src/harden/tmr.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Extension — DMR (detect) vs TMR (correct), SVF campaigns");

  const char* picks[] = {"va", "hotspot", "scp", "nw", "pathfinder"};
  TextTable table({"Kernel", "Variant", "Cycles x", "Masked %", "SDC %", "T/O %",
                   "DUE %"});
  for (const char* name : picks) {
    const auto base = workloads::make_benchmark(name);
    const auto dmr = harden::harden_dmr(*base);
    const auto tmr = harden::harden(*base);
    const auto golden_base = campaign::run_golden(*base, bench.config());

    struct Variant {
      const workloads::App* app;
      const char* label;
    };
    const Variant variants[] = {{base.get(), "base"}, {dmr.get(), "DMR"},
                                {tmr.get(), "TMR"}};
    for (const Variant& v : variants) {
      const auto golden = campaign::run_golden(*v.app, bench.config());
      campaign::CampaignSpec spec;
      spec.kernel = golden_base.kernel_names().front();
      spec.target = campaign::Target::Svf;
      spec.samples = bench.samples();
      spec.seed = bench.seed();
      const auto r =
          orchestrator::cached_campaign(*v.app, bench.config(), golden, spec, bench.pool());
      table.add_row({bench::Bench::display_name(name) + " " + spec.kernel, v.label,
                     TextTable::num(static_cast<double>(golden.total_cycles) /
                                        static_cast<double>(golden_base.total_cycles),
                                    2),
                     bench::pct(r.counts.pct(fi::Outcome::Masked)),
                     bench::pct(r.counts.pct(fi::Outcome::SDC)),
                     bench::pct(r.counts.pct(fi::Outcome::Timeout)),
                     bench::pct(r.counts.pct(fi::Outcome::DUE))});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
