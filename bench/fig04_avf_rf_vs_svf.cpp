// Figure 4: AVF of the register file only (bottom) vs SVF (top), per
// application. The paper's point: even restricted to the structure that
// software-level injection nominally models (registers), SVF still flips
// the ranking of many pairs, because AVF-RF covers dead/unallocated
// registers while SVF only ever touches live destination values.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 4 — AVF-RF (bottom) vs SVF (top), % of injections");

  TextTable table({"App", "AVF-RF %", "RF SDC", "RF T/O", "RF DUE", "SVF %", "SVF SDC",
                   "SVF T/O", "SVF DUE"});
  std::vector<analysis::TrendPoint> points;
  for (auto& ctx : bench.apps()) {
    const metrics::AppReliability rel = bench.reliability(ctx);
    const metrics::Breakdown rf = rel.avf_rf();
    const metrics::Breakdown svf = rel.svf();
    const std::string name = bench::Bench::display_name(ctx.app->name());
    table.add_row({name, bench::pct(rf.value()), bench::pct(rf.sdc),
                   bench::pct(rf.timeout), bench::pct(rf.due), bench::pct(svf.value()),
                   bench::pct(svf.sdc), bench::pct(svf.timeout), bench::pct(svf.due)});
    points.push_back({name, rf.value(), svf.value()});
  }
  std::printf("%s\n", table.render().c_str());
  const auto trends = analysis::count_trends(points);
  std::printf("Pairs: %llu consistent, %llu opposite (paper: 32 / 23)\n",
              static_cast<unsigned long long>(trends.consistent),
              static_cast<unsigned long long>(trends.opposite));
  return 0;
}
