// Extension (paper §II-A): multi-bit fault model.
//
// The paper argues single-bit flips dominate total vulnerability and that
// adjacent multi-bit upsets (which beam tests show stay within one physical
// area) would not change the observations. This bench tests that claim on
// our substrate: register-file campaigns with 1-, 2- and 4-adjacent-bit
// flips. Expected shape: failure rates grow mildly with width (more live
// bits touched), but the *ranking* of kernels is stable.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/fi/injectors.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Extension — adjacent multi-bit register-file faults (§II-A)");

  TextTable table({"Kernel", "FR 1-bit %", "FR 2-bit %", "FR 4-bit %"});
  std::vector<std::vector<double>> fr_by_width(3);
  for (auto& ctx : bench.apps()) {
    const std::string kernel = ctx.kernels.front();
    const auto indices = ctx.golden.launches_of(kernel);
    std::uint64_t window = 0;
    for (std::size_t i : indices) window += ctx.golden.launches[i].cycles();
    std::vector<std::string> row = {bench.kernel_label(ctx, kernel)};
    int width_index = 0;
    for (unsigned width : {1u, 2u, 4u}) {
      std::vector<std::uint8_t> failed(bench.samples(), 0);
      bench.pool().parallel_for(bench.samples(), [&](std::size_t i) {
        Rng rng = Rng::for_sample(bench.seed() ^ (0x3b17ull * width), i);
        std::uint64_t r = rng.below(window);
        std::uint64_t trigger = 0, end = 0;
        for (std::size_t li : indices) {
          const auto& l = ctx.golden.launches[li];
          if (r < l.cycles()) {
            trigger = l.start_cycle + 1 + r;
            end = l.end_cycle;
            break;
          }
          r -= l.cycles();
        }
        fi::MicroarchInjector hook(fi::Structure::RF, trigger, end, rng, width);
        sim::Gpu gpu(bench.config());
        gpu.set_launch_budgets(ctx.golden.budgets, ctx.golden.overflow_budget);
        gpu.set_fault_hook(&hook);
        const auto out = workloads::run_app(*ctx.app, gpu);
        failed[i] = (out.trap != sim::TrapKind::None ||
                     out.outputs != ctx.golden.output.outputs)
                        ? 1
                        : 0;
      });
      std::uint64_t failures = 0;
      for (std::uint8_t f : failed) failures += f;
      const double fr = static_cast<double>(failures) / static_cast<double>(bench.samples());
      fr_by_width[width_index++].push_back(fr);
      row.push_back(bench::pct(fr));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  // Rank stability between 1-bit and 4-bit models.
  std::vector<analysis::TrendPoint> points;
  for (std::size_t i = 0; i < fr_by_width[0].size(); ++i) {
    points.push_back({std::to_string(i), fr_by_width[0][i], fr_by_width[2][i]});
  }
  const auto trends = analysis::count_trends(points);
  std::printf("Kernel-pair ranking, 1-bit vs 4-bit model: %llu consistent, %llu opposite\n"
              "(the paper's claim: multi-bit faults would not change the observations)\n",
              static_cast<unsigned long long>(trends.consistent),
              static_cast<unsigned long long>(trends.opposite));
  return 0;
}
