// Ablation: cache metadata (tag / valid / dirty bits) vs data bits.
//
// The paper's headline AVF weights caches by their data capacity. Real
// arrays also hold tags and state bits; this ablation measures their
// failure rates separately. Expected shape: valid-bit and tag flips on
// *clean* lines are largely benign (the line refetches), while dirty-bit
// and tag flips on *dirty* lines can lose writes (SDC) — but the metadata
// population is tiny next to the data array, so the chip-level impact is
// second-order, supporting the paper's data-capacity weighting.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"

namespace {

using namespace gras;

enum class MetaKind { Data, Tag, Valid, Dirty };

const char* kind_name(MetaKind k) {
  switch (k) {
    case MetaKind::Data: return "data bit";
    case MetaKind::Tag: return "tag bit";
    case MetaKind::Valid: return "valid bit";
    case MetaKind::Dirty: return "dirty bit";
  }
  return "?";
}

class MetaInjector final : public sim::FaultHook {
 public:
  MetaInjector(MetaKind kind, std::uint64_t trigger, Rng rng)
      : kind_(kind), trigger_(trigger), rng_(rng) {}

  void on_cycle(sim::Gpu& gpu, std::uint64_t cycle) override {
    if (done_ || cycle < trigger_) return;
    sim::Cache& l2 = gpu.l2();
    switch (kind_) {
      case MetaKind::Data:
        l2.flip_data_bit(rng_.below(l2.data_bit_count()));
        break;
      case MetaKind::Tag:
        // Tags in this model are ~26 significant bits for the configured
        // geometry; flip one of the low 26.
        l2.flip_tag_bit(rng_.below(l2.line_count()),
                        static_cast<unsigned>(rng_.below(26)));
        break;
      case MetaKind::Valid:
        l2.flip_valid_bit(rng_.below(l2.line_count()));
        break;
      case MetaKind::Dirty:
        l2.flip_dirty_bit(rng_.below(l2.line_count()));
        break;
    }
    done_ = true;
  }
  std::uint64_t next_trigger() const override {
    return done_ ? ~std::uint64_t{0} : trigger_;
  }

 private:
  MetaKind kind_;
  std::uint64_t trigger_;
  Rng rng_;
  bool done_ = false;
};

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Ablation — L2 metadata (tag/valid/dirty) vs data-bit faults");

  TextTable table({"App", "Fault target", "Masked %", "SDC %", "Timeout %", "DUE %"});
  for (auto& ctx : bench.apps()) {
    // Whole-application window: metadata faults can land at any cycle.
    const std::uint64_t total = ctx.golden.total_cycles;
    for (MetaKind kind :
         {MetaKind::Data, MetaKind::Tag, MetaKind::Valid, MetaKind::Dirty}) {
      std::vector<std::uint8_t> outcomes(bench.samples());
      bench.pool().parallel_for(bench.samples(), [&](std::size_t i) {
        Rng rng = Rng::for_sample(bench.seed() ^ (0xcafeull + static_cast<int>(kind)), i);
        MetaInjector hook(kind, 1 + rng.below(total), rng);
        sim::Gpu gpu(bench.config());
        gpu.set_launch_budgets(ctx.golden.budgets, ctx.golden.overflow_budget);
        gpu.set_fault_hook(&hook);
        const auto out = workloads::run_app(*ctx.app, gpu);
        if (out.trap == sim::TrapKind::Watchdog) outcomes[i] = 2;
        else if (out.trap != sim::TrapKind::None) outcomes[i] = 3;
        else if (out.outputs != ctx.golden.output.outputs) outcomes[i] = 1;
        else outcomes[i] = 0;
      });
      std::uint64_t hist[4] = {};
      for (std::uint8_t o : outcomes) hist[o] += 1;
      const double n = static_cast<double>(bench.samples());
      table.add_row({bench::Bench::display_name(ctx.app->name()), kind_name(kind),
                     TextTable::pct(hist[0] / n), TextTable::pct(hist[1] / n),
                     TextTable::pct(hist[2] / n), TextTable::pct(hist[3] / n)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
