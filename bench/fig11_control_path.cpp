// Figure 11: control-path-affected masked runs for microarchitecture-level
// fault injection, per kernel, with and without TMR hardening.
//
// The proxy (paper §IV-B): a masked run whose total cycle count differs
// from the golden run took a different control path but still produced the
// correct output. The paper finds this share *increases* under hardening
// for most kernels — TMR corrects many control-path upsets.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Figure 11 — Control-path-affected masked runs (microarch FI), % of injections");

  // Aggregate over the five microarchitecture structures, like the AVF.
  const std::vector<campaign::Target> targets(std::begin(campaign::kMicroarchTargets),
                                              std::end(campaign::kMicroarchTargets));
  TextTable table({"Kernel", "w/o Hardening %", "w/ Hardening %"});
  auto& base = bench.apps(false);
  auto& hard = bench.apps(true);
  for (std::size_t a = 0; a < base.size(); ++a) {
    for (const std::string& kernel : base[a].kernels) {
      const auto collect = [&](bench::AppContext& ctx) {
        std::uint64_t control = 0, total = 0;
        for (const auto& [target, result] : bench.sweep(ctx, kernel, targets)) {
          control += result.control_path_masked;
          total += result.counts.total();
        }
        return total == 0 ? 0.0 : static_cast<double>(control) / static_cast<double>(total);
      };
      table.add_row({bench.kernel_label(base[a], kernel), bench::pct(collect(base[a])),
                     bench::pct(collect(hard[a]))});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
