// Ablation: two-level pruned SDC estimation vs brute-force statistical FI.
//
// The two-level estimator (DESIGN.md §14) partitions a kernel's SVF fault
// space into equivalence classes from one fault-free profiled run, injects a
// single representative per class, and reweights by class population. This
// bench validates the accuracy/cost contract on every kernel of the
// fig01/fig02 suite:
//   accuracy — the brute-force FR must fall inside the pruned estimate's
//              population-weighted Wilson CI;
//   cost     — the pruned campaign must execute >= 5x fewer samples.
// Exit status is the gate: 1 when any kernel violates either bound (the
// prune-smoke CI job runs this binary on a subset).
//
// Optional argv[1] filters to a single app name (e.g. "va").
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "src/analysis/prune.h"

int main(int argc, char** argv) {
  using namespace gras;
  const char* only_app = argc > 1 ? argv[1] : nullptr;
  bench::Bench bench;
  bench.print_header("Ablation — pruned two-level estimation vs brute-force FI (SVF)");

  TextTable table({"Kernel", "Brute FR %", "Pruned FR %", "Pruned 99% CI",
                   "Classes", "Reps", "Reduction", "Verdict"});
  const campaign::Target targets[] = {campaign::Target::Svf};
  std::uint64_t checked = 0, ci_misses = 0, weak_reductions = 0;
  for (auto& ctx : bench.apps()) {
    if (only_app && ctx.app->name() != only_app) continue;
    for (const auto& kernel : ctx.kernels) {
      const auto sweep = bench.sweep(ctx, kernel, targets);
      const campaign::CampaignResult& brute = sweep.at(campaign::Target::Svf);

      campaign::CampaignSpec spec;
      spec.kernel = kernel;
      spec.target = campaign::Target::Svf;
      spec.samples = bench.samples();
      spec.seed = bench.seed();
      const campaign::PruneClassing classing =
          analysis::build_prune_classing(*ctx.app, bench.config(), ctx.golden, spec);
      const campaign::PrunedResult pruned = campaign::run_pruned(
          *ctx.app, bench.config(), ctx.golden, spec, classing, bench.pool());

      const double brute_fr = brute.counts.failure_rate();
      const auto ci = pruned.estimate.fr_ci();
      const std::uint64_t reps = pruned.raw.total();
      const double reduction =
          reps > 0 ? static_cast<double>(brute.counts.total()) / static_cast<double>(reps)
                   : 0.0;
      const bool in_ci = brute_fr >= ci.lower && brute_fr <= ci.upper;
      const bool fast_enough = reduction >= 5.0;
      ++checked;
      if (!in_ci) ++ci_misses;
      if (!fast_enough) ++weak_reductions;
      table.add_row({bench.kernel_label(ctx, kernel), bench::pct(brute_fr),
                     bench::pct(pruned.estimate.failure_rate()),
                     "[" + bench::pct(ci.lower) + ", " + bench::pct(ci.upper) + "]",
                     std::to_string(classing.class_population.size()),
                     std::to_string(reps), TextTable::num(reduction, 1) + "x",
                     in_ci && fast_enough ? "ok"
                     : !in_ci             ? "FR outside CI"
                                          : "reduction < 5x"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%llu kernels checked: %llu brute FRs outside the pruned CI, "
              "%llu reductions below 5x.\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(ci_misses),
              static_cast<unsigned long long>(weak_reductions));
  if (checked == 0) {
    std::fprintf(stderr, "abl_pruned_vs_brute: no kernels matched%s%s\n",
                 only_app ? " app filter " : "", only_app ? only_app : "");
    return 1;
  }
  return ci_misses == 0 && weak_reductions == 0 ? 0 : 1;
}
