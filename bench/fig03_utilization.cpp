// Figure 3: AVF, SVF and resource-utilization metrics for kernel pairs,
// normalized per metric so each pair sums to 100%.
//
// The paper's three panels:
//   (a) HotSpot K1 vs LUD K1 — opposite AVF/SVF trend; HotSpot K1 has much
//       higher resource utilization.
//   (b) LUD K2 vs LUD K1 — consistent trend; LUD K1 has lower utilization,
//       AVF and SVF.
//   (c) VA K1 vs SCP K1 — opposite trend with no clear utilization winner.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace gras;

bench::AppContext& find_app(bench::Bench& bench, const std::string& name) {
  for (auto& ctx : bench.apps()) {
    if (ctx.app->name() == name) return ctx;
  }
  throw std::out_of_range(name);
}

void panel(bench::Bench& bench, const char* title, const std::string& app_a,
           const std::string& kernel_a, const std::string& app_b,
           const std::string& kernel_b) {
  auto& ctx_a = find_app(bench, app_a);
  auto& ctx_b = find_app(bench, app_b);
  const metrics::KernelReliability ra = bench.kernel_reliability(ctx_a, kernel_a);
  const metrics::KernelReliability rb = bench.kernel_reliability(ctx_b, kernel_b);
  const analysis::UtilizationProfile pa =
      analysis::profile_kernel(ctx_a.golden, kernel_a, bench.config());
  const analysis::UtilizationProfile pb =
      analysis::profile_kernel(ctx_b.golden, kernel_b, bench.config());

  std::vector<std::string> names = {"AVF", "SVF"};
  std::vector<double> va = {ra.chip_avf(bench.bits()).value(), ra.svf.value()};
  std::vector<double> vb = {rb.chip_avf(bench.bits()).value(), rb.svf.value()};
  const auto& metric_names = analysis::UtilizationProfile::metric_names();
  const auto values_a = pa.values();
  const auto values_b = pb.values();
  names.insert(names.end(), metric_names.begin(), metric_names.end());
  va.insert(va.end(), values_a.begin(), values_a.end());
  vb.insert(vb.end(), values_b.begin(), values_b.end());

  const auto normalized = analysis::normalize_pair(va, vb);
  const std::string label_a = bench.kernel_label(ctx_a, kernel_a);
  const std::string label_b = bench.kernel_label(ctx_b, kernel_b);
  TextTable table({"Metric", label_a + " %", label_b + " %"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], TextTable::pct(normalized[i].first, 1),
                   TextTable::pct(normalized[i].second, 1)});
  }
  std::printf("%s\n%s\n", title, table.render().c_str());
}

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Figure 3 — AVF, SVF and normalized resource-utilization metrics per kernel pair");
  panel(bench, "(a) HotSpot K1 vs LUD K1 (paper: opposite AVF/SVF trend)",
        "hotspot", "hotspot_k1", "lud", "lud_diagonal");
  panel(bench, "(b) LUD K2 vs LUD K1 (paper: consistent trend)",
        "lud", "lud_perimeter", "lud", "lud_diagonal");
  panel(bench, "(c) VA K1 vs SCP K1 (paper: opposite trend, mixed utilization)",
        "va", "va_k1", "scp", "scp_k1");
  return 0;
}
