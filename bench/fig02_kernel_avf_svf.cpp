// Figure 2: kernel-level AVF (bottom) and SVF (top) for all 23 kernels,
// stacked into SDC / Timeout / DUE shares.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 2 — Kernel-level AVF and SVF, % of injections");

  TextTable table({"Kernel", "AVF %", "AVF SDC", "AVF T/O", "AVF DUE", "SVF %",
                   "SVF SDC", "SVF T/O", "SVF DUE"});
  for (auto& ctx : bench.apps()) {
    for (const std::string& kernel : ctx.kernels) {
      const metrics::KernelReliability k = bench.kernel_reliability(ctx, kernel);
      const metrics::Breakdown avf = k.chip_avf(bench.bits());
      table.add_row({bench.kernel_label(ctx, kernel), bench::pct(avf.value()),
                     bench::pct(avf.sdc), bench::pct(avf.timeout), bench::pct(avf.due),
                     bench::pct(k.svf.value()), bench::pct(k.svf.sdc),
                     bench::pct(k.svf.timeout), bench::pct(k.svf.due)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
