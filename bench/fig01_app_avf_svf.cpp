// Figure 1: application-level comparison — SVF (top graph) and full-chip
// AVF (bottom graph), each stacked into SDC / Timeout / DUE shares, for the
// 11 benchmarks.
//
// Paper shape to reproduce: SVF values are an order of magnitude larger
// than AVF (no hardware masking in the software-level view), and the
// *relative ranking* of applications disagrees between the two metrics for
// a large share of pairs (quantified in Table I / tab01_trend_pairs).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Figure 1 — Application-level AVF (bottom) and SVF (top), % of injections");

  TextTable svf_table({"App", "SVF %", "SDC", "Timeout", "DUE"});
  TextTable avf_table({"App", "AVF %", "SDC", "Timeout", "DUE"});
  for (auto& ctx : bench.apps()) {
    const metrics::AppReliability rel = bench.reliability(ctx);
    const metrics::Breakdown svf = rel.svf();
    const metrics::Breakdown avf = rel.chip_avf(bench.bits());
    const std::string name = bench::Bench::display_name(ctx.app->name());
    svf_table.add_row({name, bench::pct(svf.value()), bench::pct(svf.sdc),
                       bench::pct(svf.timeout), bench::pct(svf.due)});
    avf_table.add_row({name, bench::pct(avf.value()), bench::pct(avf.sdc),
                       bench::pct(avf.timeout), bench::pct(avf.due)});
  }
  std::printf("SVF (software-level, NVBitFI-style):\n%s\n", svf_table.render().c_str());
  std::printf("AVF (cross-layer, gpuFI-4-style, chip-size-weighted):\n%s",
              avf_table.render().c_str());
  return 0;
}
