// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper. They all
// consume the same campaign database, memoized on disk (see
// src/orchestrator/cache.h), so running the whole bench directory costs the
// union of the campaigns, not the sum.
//
// Environment knobs (see src/common/env.h): GRAS_INJECTIONS (default 300;
// the paper uses 3,000), GRAS_SEED, GRAS_CONFIG, GRAS_THREADS, GRAS_CACHE.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/orchestrator/cache.h"
#include "src/campaign/campaign.h"
#include "src/common/env.h"
#include "src/common/table.h"
#include "src/harden/tmr.h"
#include "src/metrics/metrics.h"
#include "src/workloads/workload.h"

namespace gras::bench {

/// One benchmark application plus everything campaigns need.
struct AppContext {
  std::unique_ptr<workloads::App> app;
  campaign::GoldenRun golden;
  /// Kernel names in first-launch order.
  std::vector<std::string> kernels;
};

/// Lazily-built database of apps, golden runs and campaign results.
class Bench {
 public:
  Bench();

  const sim::GpuConfig& config() const { return config_; }
  std::uint64_t samples() const { return samples_; }
  std::uint64_t seed() const { return seed_; }
  ThreadPool& pool() { return pool_; }
  const metrics::StructureBits& bits() const { return bits_; }

  /// Display names as the paper prints them ("SRADv1", "K-Means", ...).
  static std::string display_name(const std::string& app_name);
  /// Paper-style kernel label, e.g. "SRADv1 K2" or "HotSpot K1".
  std::string kernel_label(const AppContext& ctx, const std::string& kernel) const;

  /// The 11 benchmarks in Figure-1 order; hardened=true wraps each in TMR.
  std::vector<AppContext>& apps(bool hardened = false);

  /// Cached campaign sweep for one kernel.
  campaign::KernelCampaigns sweep(const AppContext& ctx, const std::string& kernel,
                                  std::span<const campaign::Target> targets);

  /// Full cross-layer reliability of one app: runs the five microarch
  /// targets plus SVF (and optionally SVF-LD) on every kernel.
  metrics::AppReliability reliability(AppContext& ctx, bool with_svf_ld = false);

  /// Per-kernel reliability (same targets).
  metrics::KernelReliability kernel_reliability(AppContext& ctx,
                                                const std::string& kernel,
                                                bool with_svf_ld = false);

  /// Prints the standard bench header (config, samples, achieved margin).
  void print_header(const char* title) const;

 private:
  sim::GpuConfig config_;
  std::uint64_t samples_;
  std::uint64_t seed_;
  ThreadPool pool_;
  metrics::StructureBits bits_;
  std::vector<AppContext> base_;
  std::vector<AppContext> hardened_;
};

/// Percent string with two decimals.
std::string pct(double proportion);

}  // namespace gras::bench
