// Extension (paper §V-B): making the register-reuse analyzer operational.
//
// The paper proposes augmenting software-level fault injection with
// source-register faults plus reuse replication. This bench compares three
// software-level fault models on a subset of kernels:
//   SVF        — NVBitFI default: flip the destination register after one
//                dynamic instruction (covers downstream readers of the
//                destination, but models only producer-side faults);
//   SVF-SRC1   — flip a source operand for exactly one consumption (the
//                naive source-fault model the paper critiques: it misses
//                every later reader);
//   SVF-REUSE  — flip the stored source register so every later reader sees
//                it until the register is rewritten (the paper's proposed
//                fix).
// Shape to observe: SVF-REUSE >= SVF-SRC1 — replication only adds ways for
// the fault to matter.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Extension — SVF with source-register reuse replication (§V-B)");

  const campaign::Target targets[] = {campaign::Target::Svf, campaign::Target::SvfSrcOnce,
                                      campaign::Target::SvfSrcReuse};
  TextTable table({"Kernel", "SVF %", "SVF-SRC1 %", "SVF-REUSE %"});
  std::size_t reuse_geq_once = 0, total = 0;
  for (auto& ctx : bench.apps()) {
    for (const std::string& kernel : ctx.kernels) {
      const auto campaigns = bench.sweep(ctx, kernel, targets);
      const double dst = campaigns.at(campaign::Target::Svf).counts.failure_rate();
      const double once = campaigns.at(campaign::Target::SvfSrcOnce).counts.failure_rate();
      const double reuse =
          campaigns.at(campaign::Target::SvfSrcReuse).counts.failure_rate();
      reuse_geq_once += reuse >= once;
      total += 1;
      table.add_row({bench.kernel_label(ctx, kernel), bench::pct(dst), bench::pct(once),
                     bench::pct(reuse)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Kernels with SVF-REUSE >= SVF-SRC1: %zu / %zu\n", reuse_geq_once, total);
  return 0;
}
