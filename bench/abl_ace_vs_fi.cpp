// Ablation: analytical ACE analysis vs statistical fault injection.
//
// The paper (§I) contrasts the two classic AVF methodologies: ACE lifetime
// analysis and statistical FI. We run both on the register file:
//   AVF_ACE = live (write -> last-read) bit-cycles / total bit-cycles
//   AVF_FI  = FR(allocated-cell injections) x derating factor
// Two opposing biases separate the estimates: ACE counts every consumed bit
// as failure-causing (no credit for downstream logical/algorithmic masking,
// pushing it up vs ground truth), while FI's derating factor multiplies by
// the launch-total thread count even for multi-wave launches where only a
// fraction of CTAs is ever resident (pushing FR x DF up for those apps —
// see abl_derating_factor). The rankings should still agree broadly.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/analysis/ace.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Ablation — ACE lifetime analysis vs fault-injection AVF (RF)");

  TextTable table({"App", "AVF_ACE(RF) %", "AVF_FI(RF) %", "ACE/FI ratio"});
  std::vector<analysis::TrendPoint> points;
  for (auto& ctx : bench.apps()) {
    // ACE: one fault-free profiled run over the whole application.
    analysis::AceProfiler profiler(bench.config());
    sim::Gpu gpu(bench.config());
    gpu.set_fault_hook(&profiler);
    const auto out = workloads::run_app(*ctx.app, gpu);
    if (!out.completed()) continue;
    profiler.finalize();
    const double ace = profiler.avf_rf(gpu.cycle());

    // FI: cycle-weighted over the app's kernels.
    const metrics::AppReliability rel = bench.reliability(ctx);
    const double fi = rel.avf_rf().value();

    const std::string name = bench::Bench::display_name(ctx.app->name());
    table.add_row({name, bench::pct(ace), bench::pct(fi),
                   fi > 0 ? TextTable::num(ace / fi, 2) : "inf"});
    points.push_back({name, ace, fi});
  }
  std::printf("%s\n", table.render().c_str());
  const auto trends = analysis::count_trends(points);
  std::printf("App-pair ranking, ACE vs FI: %llu consistent, %llu opposite.\n"
              "Ratios > 1: ACE's no-downstream-masking overestimate dominates.\n"
              "Ratios < 1: FI's derating factor overestimates (multi-wave launches;\n"
              "see abl_derating_factor — for VA the ACE value matches the whole-RF\n"
              "ground-truth injection).\n",
              static_cast<unsigned long long>(trends.consistent),
              static_cast<unsigned long long>(trends.opposite));
  return 0;
}
