// Ablation: input-size sensitivity of the vulnerability metrics.
//
// The paper's related work (SUGAR, Yang et al.) speeds up resilience
// estimation by extrapolating from smaller inputs, which presumes that
// relative vulnerability is stable across input sizes. This ablation
// measures SVF and AVF-RF for VA and HotSpot at three input sizes each.
// Expected shape: SVF is nearly size-invariant (per-instruction view),
// while AVF-RF grows with occupancy (more of the register file is live)
// until the device saturates — another reason software-level views and
// hardware views diverge.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/app_base.h"

namespace {

using namespace gras;

void measure(bench::Bench& bench, const workloads::App& app, const char* label,
             TextTable& table) {
  const auto golden = campaign::run_golden(app, bench.config());
  const std::string kernel = golden.kernel_names().front();
  ThreadPool& pool = bench.pool();
  const campaign::Target targets[] = {campaign::Target::RF, campaign::Target::Svf};
  const auto campaigns = orchestrator::cached_kernel_sweep(
      app, bench.config(), golden, kernel, targets, bench.samples(), bench.seed(), pool);
  const double df = metrics::rf_derating(golden, kernel, bench.config());
  const double avf_rf = campaigns.at(campaign::Target::RF).counts.failure_rate() * df;
  const double svf = campaigns.at(campaign::Target::Svf).counts.failure_rate();
  table.add_row({label, TextTable::num(df, 4), bench::pct(avf_rf), bench::pct(svf)});
}

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Ablation — input-size sensitivity of AVF-RF and SVF");

  TextTable table({"Workload @ size", "RF derating", "AVF-RF %", "SVF %"});
  for (std::uint32_t n : {1024u, 4096u, 16384u}) {
    const auto app = workloads::make_va_sized(n);
    const std::string label = "VA n=" + std::to_string(n);
    measure(bench, *app, label.c_str(), table);
  }
  for (std::uint32_t dim : {32u, 64u, 128u}) {
    const auto app = workloads::make_hotspot_sized(dim, 2);
    const std::string label = "HotSpot " + std::to_string(dim) + "x" + std::to_string(dim);
    measure(bench, *app, label.c_str(), table);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("SVF should move little with size; AVF-RF scales with the live fraction\n"
              "of the register file (derating) until the device saturates.\n");
  return 0;
}
