#include "bench/bench_common.h"

#include <cstdio>

#include "src/common/stats.h"

namespace gras::bench {

Bench::Bench()
    : config_(sim::make_config(env_config())),
      samples_(env_injections()),
      seed_(env_seed()),
      pool_(static_cast<std::size_t>(env_threads())),
      bits_(metrics::StructureBits::from(config_)) {}

std::string Bench::display_name(const std::string& app_name) {
  if (app_name == "srad_v1") return "SRADv1";
  if (app_name == "srad_v2") return "SRADv2";
  if (app_name == "kmeans") return "K-Means";
  if (app_name == "hotspot") return "HotSpot";
  if (app_name == "lud") return "LUD";
  if (app_name == "scp") return "SCP";
  if (app_name == "va") return "VA";
  if (app_name == "nw") return "NW";
  if (app_name == "pathfinder") return "PathFinder";
  if (app_name == "backprop") return "BackProp";
  if (app_name == "bfs") return "BFS";
  // Hardened apps carry a _tmr suffix.
  if (app_name.size() > 4 && app_name.ends_with("_tmr")) {
    return display_name(app_name.substr(0, app_name.size() - 4));
  }
  return app_name;
}

std::string Bench::kernel_label(const AppContext& ctx, const std::string& kernel) const {
  std::size_t index = 0;
  for (std::size_t i = 0; i < ctx.kernels.size(); ++i) {
    if (ctx.kernels[i] == kernel) {
      index = i + 1;
      break;
    }
  }
  return display_name(ctx.app->name()) + " K" + std::to_string(index);
}

std::vector<AppContext>& Bench::apps(bool hardened) {
  if (base_.empty()) {
    for (auto& app : workloads::make_all_benchmarks()) {
      AppContext ctx;
      ctx.app = std::move(app);
      ctx.golden = campaign::run_golden(*ctx.app, config_);
      ctx.kernels = ctx.golden.kernel_names();
      base_.push_back(std::move(ctx));
    }
  }
  if (!hardened) return base_;
  if (hardened_.empty()) {
    // The TmrApp references its base app, which stays alive in base_.
    for (AppContext& base_ctx : base_) {
      AppContext ctx;
      ctx.app = harden::harden(*base_ctx.app);
      ctx.golden = campaign::run_golden(*ctx.app, config_);
      ctx.kernels = ctx.golden.kernel_names();
      hardened_.push_back(std::move(ctx));
    }
  }
  return hardened_;
}

campaign::KernelCampaigns Bench::sweep(const AppContext& ctx, const std::string& kernel,
                                       std::span<const campaign::Target> targets) {
  return orchestrator::cached_kernel_sweep(*ctx.app, config_, ctx.golden, kernel, targets,
                                       samples_, seed_, pool_);
}

metrics::AppReliability Bench::reliability(AppContext& ctx, bool with_svf_ld) {
  metrics::AppReliability rel;
  rel.app = ctx.app->name();
  std::vector<campaign::Target> targets(std::begin(campaign::kMicroarchTargets),
                                        std::end(campaign::kMicroarchTargets));
  targets.push_back(campaign::Target::Svf);
  if (with_svf_ld) targets.push_back(campaign::Target::SvfLd);
  for (const std::string& kernel : ctx.kernels) {
    const auto campaigns = sweep(ctx, kernel, targets);
    rel.kernels.push_back(
        metrics::consolidate_kernel(ctx.golden, kernel, campaigns, config_));
  }
  return rel;
}

metrics::KernelReliability Bench::kernel_reliability(AppContext& ctx,
                                                     const std::string& kernel,
                                                     bool with_svf_ld) {
  std::vector<campaign::Target> targets(std::begin(campaign::kMicroarchTargets),
                                        std::end(campaign::kMicroarchTargets));
  targets.push_back(campaign::Target::Svf);
  if (with_svf_ld) targets.push_back(campaign::Target::SvfLd);
  const auto campaigns = sweep(ctx, kernel, targets);
  return metrics::consolidate_kernel(ctx.golden, kernel, campaigns, config_);
}

void Bench::print_header(const char* title) const {
  std::printf("%s\n", title);
  std::printf("config=%s  samples/campaign=%llu  seed=%llu  99%%-CI margin=+/-%.2f pts"
              "  (paper: 3000 samples, +/-2.35 pts)\n\n",
              config_.name.c_str(), static_cast<unsigned long long>(samples_),
              static_cast<unsigned long long>(seed_),
              margin_for_samples(samples_, 0.99) * 100.0);
}

std::string pct(double proportion) { return TextTable::pct(proportion, 2); }

}  // namespace gras::bench
