// Ablation: statistical convergence of the fault-injection estimate.
//
// The paper (§II-A) uses 3,000 injections per campaign for a 99% CI of
// about +/-2.35 points (Leveugle et al.). This ablation measures the same
// campaign at increasing sample counts and reports the point estimate and
// achieved interval, illustrating the 1/sqrt(n) convergence that justifies
// the paper's choice — and what the reduced default (300) trades away.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/orchestrator/cache.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Ablation — sample-size convergence of the FR estimate");

  const char* apps[] = {"hotspot", "scp"};
  TextTable table({"Kernel", "Target", "n", "FR %", "99% CI", "theoretical margin"});
  for (const char* name : apps) {
    const auto app = workloads::make_benchmark(name);
    const auto golden = campaign::run_golden(*app, bench.config());
    const std::string kernel = golden.kernel_names().front();
    for (const auto target : {campaign::Target::RF, campaign::Target::Svf}) {
      for (std::uint64_t n : {75ull, 300ull, 1200ull}) {
        campaign::CampaignSpec spec;
        spec.kernel = kernel;
        spec.target = target;
        spec.samples = n;
        spec.seed = bench.seed();
        const auto r =
            orchestrator::cached_campaign(*app, bench.config(), golden, spec, bench.pool());
        const auto ci = r.fr_ci();
        table.add_row({bench::Bench::display_name(name) + " " + kernel,
                       campaign::target_name(target), std::to_string(n),
                       bench::pct(r.counts.failure_rate()),
                       "[" + bench::pct(ci.lower) + ", " + bench::pct(ci.upper) + "]",
                       "+/-" + bench::pct(margin_for_samples(n, 0.99))});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Margins shrink with 1/sqrt(n): 75 -> +/-14.9 pts, 300 -> +/-7.4, "
              "1200 -> +/-3.7, 3000 -> +/-2.35 (the paper's setting).\n");
  return 0;
}
