// Figure 9: Timeout + DUE shares of AVF and SVF, per kernel, with and
// without TMR hardening.
//
// Paper shape: DUE outcomes *increase* under TMR for most kernels (more
// live memory, more live address-holding registers, and vote failures all
// turn faults into detected errors), often enough to make the hardened
// kernel's overall vulnerability higher than the unprotected one's.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Figure 9 — Timeout and DUE shares of AVF and SVF, with and without TMR");

  TextTable table({"Kernel", "AVF T+D w/o %", "AVF T+D w/ %", "SVF T+D w/o %",
                   "SVF T+D w/ %"});
  auto& base = bench.apps(false);
  auto& hard = bench.apps(true);
  std::size_t increased = 0, total = 0;
  for (std::size_t a = 0; a < base.size(); ++a) {
    for (const std::string& kernel : base[a].kernels) {
      const auto before = bench.kernel_reliability(base[a], kernel);
      const auto after = bench.kernel_reliability(hard[a], kernel);
      const auto td = [](const metrics::Breakdown& b) { return b.timeout + b.due; };
      const double avf0 = td(before.chip_avf(bench.bits()));
      const double avf1 = td(after.chip_avf(bench.bits()));
      const double svf0 = td(before.svf);
      const double svf1 = td(after.svf);
      increased += svf1 > svf0;
      total += 1;
      table.add_row({bench.kernel_label(base[a], kernel), bench::pct(avf0),
                     bench::pct(avf1), bench::pct(svf0), bench::pct(svf1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Kernels whose SVF Timeout+DUE share increased under TMR: %zu / %zu\n"
              "(paper: DUEs increase for most kernels)\n",
              increased, total);
  return 0;
}
