// Figure 7: kernel-level AVF and SVF with and without TMR hardening.
//
// Paper shape: most kernels improve under TMR, but several get *worse*
// (BackProp K2 and SRADv1 K2 in AVF; BackProp K1, SRADv1 K2/K3 in SVF),
// because triplication triples execution time and live state, and the
// non-triplicated host path is a common-mode channel.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 7 — AVF and SVF of kernels with and without TMR hardening");

  TextTable table({"Kernel", "AVF w/o %", "AVF w/ %", "SVF w/o %", "SVF w/ %"});
  auto& base = bench.apps(false);
  auto& hard = bench.apps(true);
  std::size_t worse_avf = 0, worse_svf = 0;
  for (std::size_t a = 0; a < base.size(); ++a) {
    for (const std::string& kernel : base[a].kernels) {
      const auto before = bench.kernel_reliability(base[a], kernel);
      const auto after = bench.kernel_reliability(hard[a], kernel);
      const double avf0 = before.chip_avf(bench.bits()).value();
      const double avf1 = after.chip_avf(bench.bits()).value();
      const double svf0 = before.svf.value();
      const double svf1 = after.svf.value();
      worse_avf += avf1 > avf0;
      worse_svf += svf1 > svf0;
      table.add_row({bench.kernel_label(base[a], kernel), bench::pct(avf0),
                     bench::pct(avf1), bench::pct(svf0), bench::pct(svf1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Kernels with *increased* vulnerability under TMR: AVF %zu, SVF %zu\n"
              "(paper reports 2 AVF and 3 SVF increases out of 23)\n",
              worse_avf, worse_svf);
  return 0;
}
