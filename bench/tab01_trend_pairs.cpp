// Table I: consistent vs opposite vulnerability trends between AVF and SVF
// over all application pairs, kernel pairs, AVF-RF-vs-SVF pairs and
// AVF-Cache-vs-SVF-LD pairs.
//
// Paper values (for calibration of the shape, not the absolute counts):
//   Application-level        32 (58%) / 23 (42%)
//   Kernel-level            144 (57%) / 109 (43%)
//   AVF-RF vs. SVF           32 (58%) / 23 (42%)
//   AVF-Cache vs. SVF-LD     23 (42%) / 32 (58%)
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Table I — Opposite trends in application or kernel pairs");

  std::vector<analysis::TrendPoint> app_avf_svf, app_rf_svf, app_cache_ld;
  std::vector<analysis::TrendPoint> kernel_avf_svf;
  for (auto& ctx : bench.apps()) {
    const metrics::AppReliability rel = bench.reliability(ctx, /*with_svf_ld=*/true);
    const std::string name = bench::Bench::display_name(ctx.app->name());
    app_avf_svf.push_back({name, rel.chip_avf(bench.bits()).value(), rel.svf().value()});
    app_rf_svf.push_back({name, rel.avf_rf().value(), rel.svf().value()});
    app_cache_ld.push_back(
        {name, rel.avf_cache(bench.bits()).value(), rel.svf_ld().value()});
    for (const metrics::KernelReliability& k : rel.kernels) {
      kernel_avf_svf.push_back(
          {name + "/" + k.kernel, k.chip_avf(bench.bits()).value(), k.svf.value()});
    }
  }

  TextTable table({"Comparison", "Consistent Trend", "Opposite Trend", "Opposite %"});
  const auto add = [&](const char* label, const std::vector<analysis::TrendPoint>& pts) {
    const analysis::TrendCounts c = analysis::count_trends(pts);
    table.add_row({label, std::to_string(c.consistent), std::to_string(c.opposite),
                   TextTable::pct(c.opposite_share(), 1)});
  };
  add("Application-Level (AVF vs SVF)", app_avf_svf);
  add("Kernel-Level (AVF vs SVF)", kernel_avf_svf);
  add("AVF-RF vs. SVF", app_rf_svf);
  add("AVF-Cache vs. SVF-LD", app_cache_ld);
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reference: 23/55 (42%%) app pairs and 109/253 (43%%) kernel pairs "
              "flip between AVF and SVF;\nAVF-Cache vs SVF-LD flips a majority "
              "(58%%) of app pairs.\n");
  return 0;
}
