// Figure 10: per-structure AVF breakdown (SDC / Timeout / DUE) before and
// after TMR hardening, for the paper's representative kernels:
// LUD K2, SCP K1, NW K2, BackProp K2, SRADv1 K2, K-Means K2.
//
// Paper shape: TMR's improvement concentrates in the register file and
// shared memory (where unhardened SDC probability is largest); hardening
// *introduces* extra vulnerability in L2 (bigger footprint, more live
// lines), and the reliability character of a kernel changes completely —
// detail only a cross-layer analysis can deliver.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace gras;

struct Pick {
  const char* app;
  const char* kernel;
};

constexpr Pick kPicks[] = {
    {"lud", "lud_perimeter"},       {"scp", "scp_k1"},
    {"nw", "nw_k2"},                {"backprop", "backprop_adjust"},
    {"srad_v1", "srad1_prepare"},   {"kmeans", "kmeans_point"},
};

bench::AppContext& find_app(std::vector<bench::AppContext>& apps, const std::string& name,
                            bool hardened) {
  for (auto& ctx : apps) {
    if (ctx.app->name() == (hardened ? name + "_tmr" : name)) return ctx;
  }
  throw std::out_of_range(name);
}

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Figure 10 — Per-structure AVF (FR x DF, %) before/after TMR, representative kernels");

  for (fi::Structure s : fi::kAllStructures) {
    TextTable table({"Kernel", "SDC w/o", "T/O w/o", "DUE w/o", "SDC w/", "T/O w/",
                     "DUE w/"});
    for (const Pick& pick : kPicks) {
      auto& base = find_app(bench.apps(false), pick.app, false);
      auto& hard = find_app(bench.apps(true), pick.app, true);
      const auto before = bench.kernel_reliability(base, pick.kernel).avf(s);
      const auto after = bench.kernel_reliability(hard, pick.kernel).avf(s);
      table.add_row({bench.kernel_label(base, pick.kernel), bench::pct(before.sdc),
                     bench::pct(before.timeout), bench::pct(before.due),
                     bench::pct(after.sdc), bench::pct(after.timeout),
                     bench::pct(after.due)});
    }
    std::printf("(%c) %s:\n%s\n", static_cast<char>('a' + static_cast<int>(s)),
                fi::structure_name(s), table.render().c_str());
  }
  return 0;
}
