// Google-benchmark microbenchmarks: simulator and campaign throughput.
//
// The paper motivates software-level injection with speed ("two orders of
// magnitude or more": 1,258 machine-days of AVF vs 10 of SVF). These
// benchmarks measure the analogous costs in this reproduction: the cost of
// one golden run per app, one microarchitecture-level sample, one
// software-level sample, and the launch-boundary checkpoint/restore fast
// path vs re-simulating the fault-free prefix of every sample (DESIGN.md §7).
//
// To track the numbers across revisions, emit machine-readable output:
//
//   ./bench/perf_sim_throughput --benchmark_format=json
//       --benchmark_out=BENCH_perf_sim_throughput.json
//
// and compare BENCH_*.json files between commits (benchmark names are
// stable). The checkpointed-vs-full pairs to watch are
// BM_SampleCheckpointed/BM_SampleFullRun with matching suffixes: the
// `late` pair targets a kernel behind a long launch prefix, where the
// fast-forward should win by >=2x; the `early` pair targets the app's
// first kernel, where both paths simulate nearly everything and the
// speedup is just the reuse of a pre-built Gpu workspace.
// The journal-overhead pair is BM_CampaignJournaled vs BM_CampaignInMemory:
// identical campaigns through the durable orchestrator with and without the
// on-disk sample journal. The journal is written by a dedicated writer
// thread (append + fsync per batch) that overlaps simulation, so the
// journaled run should stay within 2% of the in-memory one.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "src/campaign/campaign.h"
#include "src/harden/tmr.h"
#include "src/orchestrator/orchestrator.h"
#include "src/workloads/workload.h"

namespace {

using namespace gras;

const sim::GpuConfig& config() {
  static const sim::GpuConfig c = sim::make_config("gv100-scaled");
  return c;
}

void BM_GoldenRun(benchmark::State& state, const std::string& name) {
  const auto app = workloads::make_benchmark(name);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*app, gpu));
  }
}
BENCHMARK_CAPTURE(BM_GoldenRun, va, std::string("va"));
BENCHMARK_CAPTURE(BM_GoldenRun, hotspot, std::string("hotspot"));
BENCHMARK_CAPTURE(BM_GoldenRun, bfs, std::string("bfs"));

void BM_MicroarchSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_MicroarchSample);

void BM_SoftwareSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::Svf;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_SoftwareSample);

/// One sample via the checkpoint fast path: restore the snapshot preceding
/// the target kernel's first launch into a reused workspace and replay.
/// `kernel` empty selects the app's last kernel (deepest fast-forward).
void BM_SampleCheckpointed(benchmark::State& state, const std::string& name,
                           const std::string& kernel, campaign::Target target) {
  const auto app = workloads::make_benchmark(name);
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = kernel.empty() ? golden.kernel_names().back() : kernel;
  spec.target = target;
  sim::Gpu workspace(config());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, golden, spec, i++, workspace));
  }
}

/// The same samples without checkpoints: every sample re-simulates the app
/// from cycle 0 on a freshly-constructed Gpu (the pre-checkpointing cost).
void BM_SampleFullRun(benchmark::State& state, const std::string& name,
                      const std::string& kernel, campaign::Target target) {
  const auto app = workloads::make_benchmark(name);
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::Off);
  campaign::CampaignSpec spec;
  spec.kernel = kernel.empty() ? golden.kernel_names().back() : kernel;
  spec.target = target;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}

// Late kernels: srad_v1's compress runs once after the whole diffusion loop;
// lud_internal's first launch follows diagonal+perimeter sweeps.
BENCHMARK_CAPTURE(BM_SampleCheckpointed, srad_v1_late_rf, std::string("srad_v1"),
                  std::string(), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleFullRun, srad_v1_late_rf, std::string("srad_v1"),
                  std::string(), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleCheckpointed, lud_late_svf, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf);
BENCHMARK_CAPTURE(BM_SampleFullRun, lud_late_svf, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf);
// Early kernel: the first launch has an empty prefix, so the checkpointed
// path degenerates to a full simulation on a reused workspace.
BENCHMARK_CAPTURE(BM_SampleCheckpointed, srad_v1_early_rf, std::string("srad_v1"),
                  std::string("srad1_extract"), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleFullRun, srad_v1_early_rf, std::string("srad_v1"),
                  std::string("srad1_extract"), campaign::Target::RF);

/// One whole campaign through the durable orchestrator. `journaled` toggles
/// the sample journal; everything else (chunking, workspace reuse, sample
/// schedule) is identical, so the pair isolates pure journal overhead.
void BM_Campaign(benchmark::State& state, bool journaled) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  spec.samples = 64;
  ThreadPool pool(4);
  orchestrator::DurableOptions options;
  options.journaled = journaled;
  options.resume = false;  // each iteration starts a fresh journal
  options.journal =
      std::filesystem::temp_directory_path() / "gras_bench_journal.jrnl";
  std::uint64_t samples = 0;
  for (auto _ : state) {
    const auto r =
        orchestrator::run_durable(*app, config(), golden, spec, pool, options);
    samples += r.executed;
    benchmark::DoNotOptimize(r.result.counts.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  std::error_code ec;
  std::filesystem::remove(options.journal, ec);
}
BENCHMARK_CAPTURE(BM_Campaign, journaled, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, in_memory, false)->Unit(benchmark::kMillisecond);

void BM_TmrGoldenRun(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto tmr = harden::harden(*app);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*tmr, gpu));
  }
}
BENCHMARK(BM_TmrGoldenRun);

void BM_GpuConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(gpu.cycle());
  }
}
BENCHMARK(BM_GpuConstruction);

}  // namespace

BENCHMARK_MAIN();
