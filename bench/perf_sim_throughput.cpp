// Google-benchmark microbenchmarks: simulator and campaign throughput.
//
// The paper motivates software-level injection with speed ("two orders of
// magnitude or more": 1,258 machine-days of AVF vs 10 of SVF). These
// benchmarks measure the analogous costs in this reproduction: the cost of
// one golden run per app, one microarchitecture-level sample, one
// software-level sample, and the launch-boundary checkpoint/restore fast
// path vs re-simulating the fault-free prefix of every sample (DESIGN.md §7).
//
// To track the numbers across revisions, emit machine-readable output:
//
//   ./bench/perf_sim_throughput --benchmark_format=json
//       --benchmark_out=BENCH_perf_sim_throughput.json
//
// and compare BENCH_*.json files between commits (benchmark names are
// stable). The checkpointed-vs-full pairs to watch are
// BM_SampleCheckpointed/BM_SampleFullRun with matching suffixes: the
// `late` pair targets a kernel behind a long launch prefix, where the
// fast-forward should win by >=2x; the `early` pair targets the app's
// first kernel, where both paths simulate nearly everything and the
// speedup is just the reuse of a pre-built Gpu workspace.
// The execution-backend pairs are BM_SampleBackend/*_timing vs
// */_functional: identical samples with the fault-free launch prefix run
// on the cycle-level timing core vs the fast functional interpreter
// (GRAS_BACKEND, DESIGN.md §11). The JSON summary additionally isolates
// late-injection SVF samples — where the functional prefix covers most of
// the work — and reports their per-sample speedup, which the CI perf gate
// (tools/check_bench.py vs bench/baseline_perf.json) keeps from regressing.
// The journal-overhead pair is BM_CampaignJournaled vs BM_CampaignInMemory:
// identical campaigns through the durable orchestrator with and without the
// on-disk sample journal. The journal is written by a dedicated writer
// thread (append + fsync per batch) that overlaps simulation, so the
// journaled run should stay within 2% of the in-memory one.
//
// After the google-benchmark suite, main() runs a fixed traced-vs-untraced
// campaign pair and writes BENCH_perf_sim_throughput.json (path overridable
// via GRAS_BENCH_JSON; pass --json-only to skip the google-benchmark suite):
// samples/sec with tracing off (the default: Span = one relaxed atomic load)
// and on, the enabled-tracing overhead, the cost of one disabled Span, and
// the per-phase median span durations from the traced run on a single
// worker thread. Compare the JSON between commits to catch observability
// regressions without parsing human-oriented benchmark output.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/common/build_info.h"
#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/harden/tmr.h"
#include "src/orchestrator/orchestrator.h"
#include "src/workloads/workload.h"

namespace {

using namespace gras;

const sim::GpuConfig& config() {
  static const sim::GpuConfig c = sim::make_config("gv100-scaled");
  return c;
}

void BM_GoldenRun(benchmark::State& state, const std::string& name) {
  const auto app = workloads::make_benchmark(name);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*app, gpu));
  }
}
BENCHMARK_CAPTURE(BM_GoldenRun, va, std::string("va"));
BENCHMARK_CAPTURE(BM_GoldenRun, hotspot, std::string("hotspot"));
BENCHMARK_CAPTURE(BM_GoldenRun, bfs, std::string("bfs"));

void BM_MicroarchSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_MicroarchSample);

void BM_SoftwareSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::Svf;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_SoftwareSample);

/// One sample via the checkpoint fast path: restore the snapshot preceding
/// the target kernel's first launch into a reused workspace and replay.
/// `kernel` empty selects the app's last kernel (deepest fast-forward).
void BM_SampleCheckpointed(benchmark::State& state, const std::string& name,
                           const std::string& kernel, campaign::Target target) {
  const auto app = workloads::make_benchmark(name);
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = kernel.empty() ? golden.kernel_names().back() : kernel;
  spec.target = target;
  sim::Gpu workspace(config());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, golden, spec, i++, workspace));
  }
}

/// The same samples without checkpoints: every sample re-simulates the app
/// from cycle 0 on a freshly-constructed Gpu (the pre-checkpointing cost).
void BM_SampleFullRun(benchmark::State& state, const std::string& name,
                      const std::string& kernel, campaign::Target target) {
  const auto app = workloads::make_benchmark(name);
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::Off);
  campaign::CampaignSpec spec;
  spec.kernel = kernel.empty() ? golden.kernel_names().back() : kernel;
  spec.target = target;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}

// Late kernels: srad_v1's compress runs once after the whole diffusion loop;
// lud_internal's first launch follows diagonal+perimeter sweeps.
BENCHMARK_CAPTURE(BM_SampleCheckpointed, srad_v1_late_rf, std::string("srad_v1"),
                  std::string(), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleFullRun, srad_v1_late_rf, std::string("srad_v1"),
                  std::string(), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleCheckpointed, lud_late_svf, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf);
BENCHMARK_CAPTURE(BM_SampleFullRun, lud_late_svf, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf);
// Early kernel: the first launch has an empty prefix, so the checkpointed
// path degenerates to a full simulation on a reused workspace.
BENCHMARK_CAPTURE(BM_SampleCheckpointed, srad_v1_early_rf, std::string("srad_v1"),
                  std::string("srad1_extract"), campaign::Target::RF);
BENCHMARK_CAPTURE(BM_SampleFullRun, srad_v1_early_rf, std::string("srad_v1"),
                  std::string("srad1_extract"), campaign::Target::RF);

/// One checkpointed sample with a forced execution backend: the fault-free
/// launches between the resume checkpoint and the injection launch run on
/// the timing core (`Backend::Timing`) or the fast functional interpreter
/// (`Backend::Functional`). Same samples, same results; the pair isolates
/// the prefix-execution cost. Kernels with many launches (srad2's diffusion
/// iterations, lud's inner sweeps) give the functional backend the most
/// prefix to skip.
void BM_SampleBackend(benchmark::State& state, const std::string& name,
                      const std::string& kernel, campaign::Target target,
                      campaign::Backend backend) {
  const auto app = workloads::make_benchmark(name);
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = kernel;
  spec.target = target;
  sim::Gpu workspace(config());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        campaign::run_sample(*app, golden, spec, i++, workspace, nullptr, backend));
  }
}
BENCHMARK_CAPTURE(BM_SampleBackend, srad_v1_svf_timing, std::string("srad_v1"),
                  std::string("srad1_srad2"), campaign::Target::Svf,
                  campaign::Backend::Timing);
BENCHMARK_CAPTURE(BM_SampleBackend, srad_v1_svf_functional, std::string("srad_v1"),
                  std::string("srad1_srad2"), campaign::Target::Svf,
                  campaign::Backend::Functional);
BENCHMARK_CAPTURE(BM_SampleBackend, lud_svf_timing, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf,
                  campaign::Backend::Timing);
BENCHMARK_CAPTURE(BM_SampleBackend, lud_svf_functional, std::string("lud"),
                  std::string("lud_internal"), campaign::Target::Svf,
                  campaign::Backend::Functional);

/// One whole campaign through the durable orchestrator. `journaled` toggles
/// the sample journal; everything else (chunking, workspace reuse, sample
/// schedule) is identical, so the pair isolates pure journal overhead.
void BM_Campaign(benchmark::State& state, bool journaled) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  spec.samples = 64;
  ThreadPool pool(4);
  orchestrator::DurableOptions options;
  options.journaled = journaled;
  options.resume = false;  // each iteration starts a fresh journal
  options.journal =
      std::filesystem::temp_directory_path() / "gras_bench_journal.jrnl";
  std::uint64_t samples = 0;
  for (auto _ : state) {
    const auto r =
        orchestrator::run_durable(*app, config(), golden, spec, pool, options);
    samples += r.executed;
    benchmark::DoNotOptimize(r.result.counts.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  std::error_code ec;
  std::filesystem::remove(options.journal, ec);
}
BENCHMARK_CAPTURE(BM_Campaign, journaled, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, in_memory, false)->Unit(benchmark::kMillisecond);

void BM_TmrGoldenRun(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto tmr = harden::harden(*app);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*tmr, gpu));
  }
}
BENCHMARK(BM_TmrGoldenRun);

void BM_GpuConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(gpu.cycle());
  }
}
BENCHMARK(BM_GpuConstruction);

// ---- Machine-readable observability benchmark (BENCH_*.json) ----

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CampaignMeasurement {
  double samples_per_sec = 0.0;
  double wall_sec = 0.0;
};

/// One fixed journaled campaign on a single worker thread (so every phase
/// span lands on the caller and phase attribution is deterministic).
CampaignMeasurement run_fixed_campaign(const workloads::App& app,
                                       const campaign::GoldenRun& golden,
                                       std::uint64_t samples) {
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  spec.samples = samples;
  ThreadPool pool(1);
  orchestrator::DurableOptions options;
  options.journaled = true;
  options.resume = false;
  options.journal =
      std::filesystem::temp_directory_path() / "gras_bench_obs_journal.jrnl";
  const double begin = wall_seconds();
  const auto r = orchestrator::run_durable(app, config(), golden, spec, pool, options);
  const double elapsed = wall_seconds() - begin;
  std::error_code ec;
  std::filesystem::remove(options.journal, ec);
  CampaignMeasurement m;
  m.wall_sec = elapsed;
  m.samples_per_sec =
      elapsed > 0 ? static_cast<double>(r.executed) / elapsed : 0.0;
  return m;
}

/// Median duration (microseconds) per span name over the recorded trace.
std::map<std::string, double> phase_median_us(std::vector<trace::Event> events) {
  std::map<std::string, std::vector<std::uint64_t>> durs;
  for (const trace::Event& e : events) durs[e.name].push_back(e.dur_ns);
  std::map<std::string, double> out;
  for (auto& [name, d] : durs) {
    std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(d.size() / 2),
                     d.end());
    out[name] = static_cast<double>(d[d.size() / 2]) / 1000.0;
  }
  return out;
}

/// Cost of one Span while tracing is disabled — the price every campaign
/// pays for having the instrumentation compiled in.
double disabled_span_cost_ns() {
  constexpr int kSpans = 1 << 20;
  const double begin = wall_seconds();
  for (int i = 0; i < kSpans; ++i) {
    const trace::Span span("bench.disabled", "bench");
    benchmark::DoNotOptimize(&span);
  }
  return (wall_seconds() - begin) * 1e9 / kSpans;
}

struct BackendMeasurement {
  double timing_ms_per_sample = 0.0;
  double functional_ms_per_sample = 0.0;
  double speedup = 0.0;
  std::size_t samples = 0;
};

/// Per-sample cost of the two execution backends on late-injection SVF
/// samples. Sample indices are scanned (cheaply, on the functional backend)
/// for injections landing in the last eighth of srad2's diffusion launches —
/// the samples where the prefix dominates and the backend choice matters —
/// and that same index set is then timed under both backends. The set is
/// identical either way because fault-site selection is backend-invariant.
BackendMeasurement measure_backend_speedup() {
  const auto app = workloads::make_benchmark("srad_v1");
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = "srad1_srad2";
  spec.target = campaign::Target::Svf;
  const auto& launches = golden.launches_of(spec.kernel);
  const std::size_t cutoff = launches[launches.size() - 1 - launches.size() / 8];
  sim::Gpu workspace(config());
  std::vector<std::uint64_t> late;
  for (std::uint64_t i = 0; late.size() < 12 && i < 256; ++i) {
    const auto s = campaign::run_sample(*app, golden, spec, i, workspace, nullptr,
                                        campaign::Backend::Functional);
    if (s.fault.launch >= cutoff) late.push_back(i);
  }
  BackendMeasurement m;
  m.samples = late.size();
  if (late.empty()) return m;
  const auto per_sample_ms = [&](campaign::Backend backend) {
    const double begin = wall_seconds();
    for (const std::uint64_t i : late) {
      benchmark::DoNotOptimize(
          campaign::run_sample(*app, golden, spec, i, workspace, nullptr, backend));
    }
    return (wall_seconds() - begin) * 1e3 / static_cast<double>(late.size());
  };
  per_sample_ms(campaign::Backend::Functional);  // warm-up
  m.functional_ms_per_sample = per_sample_ms(campaign::Backend::Functional);
  m.timing_ms_per_sample = per_sample_ms(campaign::Backend::Timing);
  m.speedup = m.functional_ms_per_sample > 0
                  ? m.timing_ms_per_sample / m.functional_ms_per_sample
                  : 0.0;
  return m;
}

struct BatchMeasurement {
  double unbatched_ms_per_sample = 0.0;
  double batched_ms_per_sample = 0.0;
  double speedup = 0.0;
  double latency_p50_ms = 0.0;  ///< unbatched per-sample latency percentiles
  double latency_p95_ms = 0.0;
  std::size_t lanes = 0;
};

/// Per-sample cost of batched lock-step execution vs one-at-a-time samples
/// on a same-kernel SVF batch (DESIGN.md §12). The fault-site draw is
/// replayed directly from the golden launch table (no simulation) to collect
/// 8 sample indices injecting into the same late diffusion launch — the
/// workload batching targets: a long shared fault-free prefix paid once
/// instead of per sample. Both paths run the pure timing backend so the
/// measurement isolates batching, not the functional-prefix optimization.
BatchMeasurement measure_batched_speedup() {
  const auto app = workloads::make_benchmark("srad_v1");
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  campaign::CampaignSpec spec;
  spec.kernel = "srad1_srad2";
  spec.target = campaign::Target::Svf;

  const auto& launches = golden.launches_of(spec.kernel);
  std::uint64_t total = 0;
  for (const std::size_t i : launches) {
    total += golden.launches[i].gp_end - golden.launches[i].gp_begin;
  }
  BatchMeasurement m;
  if (total == 0) return m;
  // Replay each sample's launch draw (the first rng.below of the campaign's
  // fault-site selection) until 8 samples land in one back-half launch.
  const std::size_t back_half = launches[launches.size() / 2];
  std::map<std::size_t, std::vector<std::uint64_t>> by_launch;
  std::vector<std::uint64_t> lanes;
  for (std::uint64_t s = 0; s < 4096 && lanes.empty(); ++s) {
    Rng rng = Rng::for_sample(
        spec.seed ^ (static_cast<std::uint64_t>(spec.target) << 40), s);
    std::uint64_t r = rng.below(total);
    for (const std::size_t i : launches) {
      const std::uint64_t span =
          golden.launches[i].gp_end - golden.launches[i].gp_begin;
      if (r < span) {
        if (i >= back_half) {
          auto& group = by_launch[i];
          group.push_back(s);
          if (group.size() >= 8) lanes = group;
        }
        break;
      }
      r -= span;
    }
  }
  m.lanes = lanes.size();
  if (lanes.size() < 2) return m;

  sim::Gpu workspace(config());
  campaign::run_batched(*app, golden, spec, lanes, workspace,
                        campaign::Backend::Timing);  // warm-up

  const double b0 = wall_seconds();
  benchmark::DoNotOptimize(campaign::run_batched(*app, golden, spec, lanes,
                                                 workspace,
                                                 campaign::Backend::Timing));
  const double batched_sec = wall_seconds() - b0;

  std::vector<double> per_sample_ms;
  const double u0 = wall_seconds();
  for (const std::uint64_t s : lanes) {
    const double t0 = wall_seconds();
    benchmark::DoNotOptimize(campaign::run_sample(*app, golden, spec, s, workspace,
                                                  nullptr,
                                                  campaign::Backend::Timing));
    per_sample_ms.push_back((wall_seconds() - t0) * 1e3);
  }
  const double unbatched_sec = wall_seconds() - u0;

  std::sort(per_sample_ms.begin(), per_sample_ms.end());
  m.latency_p50_ms = per_sample_ms[per_sample_ms.size() / 2];
  m.latency_p95_ms = per_sample_ms[per_sample_ms.size() * 95 / 100];
  m.unbatched_ms_per_sample =
      unbatched_sec * 1e3 / static_cast<double>(lanes.size());
  m.batched_ms_per_sample = batched_sec * 1e3 / static_cast<double>(lanes.size());
  m.speedup = m.batched_ms_per_sample > 0
                  ? m.unbatched_ms_per_sample / m.batched_ms_per_sample
                  : 0.0;
  return m;
}

int emit_bench_json() {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden =
      campaign::run_golden(*app, config(), campaign::Checkpointing::On);
  constexpr std::uint64_t kSamples = 96;

  run_fixed_campaign(*app, golden, kSamples);  // warm-up (page cache, allocator)
  trace::reset();
  const CampaignMeasurement untraced = run_fixed_campaign(*app, golden, kSamples);

  trace::start();
  const CampaignMeasurement traced = run_fixed_campaign(*app, golden, kSamples);
  trace::stop();
  const std::vector<trace::Event> events = trace::collect();
  const auto medians = phase_median_us(events);
  std::uint64_t traced_self_ns = 0;
  for (const auto& p : trace::phase_totals(events)) traced_self_ns += p.self_ns;

  const BackendMeasurement backend = measure_backend_speedup();
  const BatchMeasurement batch = measure_batched_speedup();

  const double span_ns = disabled_span_cost_ns();
  const double overhead_pct =
      untraced.samples_per_sec > 0
          ? 100.0 * (1.0 - traced.samples_per_sec / untraced.samples_per_sec)
          : 0.0;

  const std::string path =
      env_str("GRAS_BENCH_JSON", "BENCH_perf_sim_throughput.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"perf_sim_throughput\",\n");
  std::fprintf(f, "  \"build\": %s,\n", build_json().c_str());
  std::fprintf(f, "  \"campaign_samples\": %llu,\n",
               static_cast<unsigned long long>(kSamples));
  std::fprintf(f, "  \"samples_per_sec_untraced\": %.2f,\n", untraced.samples_per_sec);
  std::fprintf(f, "  \"samples_per_sec_traced\": %.2f,\n", traced.samples_per_sec);
  std::fprintf(f, "  \"trace_enabled_overhead_pct\": %.2f,\n", overhead_pct);
  std::fprintf(f, "  \"disabled_span_cost_ns\": %.2f,\n", span_ns);
  std::fprintf(f, "  \"backend_late_svf_samples\": %llu,\n",
               static_cast<unsigned long long>(backend.samples));
  std::fprintf(f, "  \"backend_timing_ms_per_sample\": %.3f,\n",
               backend.timing_ms_per_sample);
  std::fprintf(f, "  \"backend_functional_ms_per_sample\": %.3f,\n",
               backend.functional_ms_per_sample);
  std::fprintf(f, "  \"backend_speedup_late_svf\": %.2f,\n", backend.speedup);
  std::fprintf(f, "  \"batch_lanes\": %llu,\n",
               static_cast<unsigned long long>(batch.lanes));
  std::fprintf(f, "  \"batch_unbatched_ms_per_sample\": %.3f,\n",
               batch.unbatched_ms_per_sample);
  std::fprintf(f, "  \"batch_batched_ms_per_sample\": %.3f,\n",
               batch.batched_ms_per_sample);
  std::fprintf(f, "  \"batch_speedup_same_kernel_svf\": %.2f,\n", batch.speedup);
  std::fprintf(f, "  \"sample_latency_p50_ms\": %.3f,\n", batch.latency_p50_ms);
  std::fprintf(f, "  \"sample_latency_p95_ms\": %.3f,\n", batch.latency_p95_ms);
  std::fprintf(f, "  \"traced_wall_ms\": %.3f,\n", traced.wall_sec * 1e3);
  std::fprintf(f, "  \"traced_self_total_ms\": %.3f,\n",
               static_cast<double>(traced_self_ns) / 1e6);
  std::fprintf(f, "  \"phase_median_us\": {");
  bool first = true;
  for (const auto& [name, us] : medians) {
    std::fprintf(f, "%s\n    \"%s\": %.3f", first ? "" : ",", name.c_str(), us);
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --json-only: skip the google-benchmark suite and only write the JSON
  // summary (what the CI smoke job runs).
  bool json_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-only") {
      json_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!json_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return emit_bench_json();
}
