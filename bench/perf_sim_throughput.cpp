// Google-benchmark microbenchmarks: simulator and campaign throughput.
//
// The paper motivates software-level injection with speed ("two orders of
// magnitude or more": 1,258 machine-days of AVF vs 10 of SVF). These
// benchmarks measure the analogous costs in this reproduction: the cost of
// one golden run per app, one microarchitecture-level sample, and one
// software-level sample.
#include <benchmark/benchmark.h>

#include "src/campaign/campaign.h"
#include "src/harden/tmr.h"
#include "src/workloads/workload.h"

namespace {

using namespace gras;

const sim::GpuConfig& config() {
  static const sim::GpuConfig c = sim::make_config("gv100-scaled");
  return c;
}

void BM_GoldenRun(benchmark::State& state, const std::string& name) {
  const auto app = workloads::make_benchmark(name);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*app, gpu));
  }
}
BENCHMARK_CAPTURE(BM_GoldenRun, va, std::string("va"));
BENCHMARK_CAPTURE(BM_GoldenRun, hotspot, std::string("hotspot"));
BENCHMARK_CAPTURE(BM_GoldenRun, bfs, std::string("bfs"));

void BM_MicroarchSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::RF;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_MicroarchSample);

void BM_SoftwareSample(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::Svf;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::run_sample(*app, config(), golden, spec, i++));
  }
}
BENCHMARK(BM_SoftwareSample);

void BM_TmrGoldenRun(benchmark::State& state) {
  const auto app = workloads::make_benchmark("hotspot");
  const auto tmr = harden::harden(*app);
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(workloads::run_app(*tmr, gpu));
  }
}
BENCHMARK(BM_TmrGoldenRun);

void BM_GpuConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Gpu gpu(config());
    benchmark::DoNotOptimize(gpu.cycle());
  }
}
BENCHMARK(BM_GpuConstruction);

}  // namespace

BENCHMARK_MAIN();
