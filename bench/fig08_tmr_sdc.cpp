// Figure 8: the SDC share of the cross-layer AVF, per kernel, with and
// without TMR hardening.
//
// Paper shape: the software-level view (Fig. 7's SVF) claims SDCs are
// eliminated, but the cross-layer AVF keeps a small non-zero SDC residue
// for several kernels — faults in hardware state that no software-level
// redundancy can see (e.g. dirty output lines written back unread, and
// corrupted copy-0 data feeding the non-triplicated host logic).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header("Figure 8 — SDC share of AVF with and without TMR hardening");

  TextTable table({"Kernel", "AVF-SDC w/o %", "AVF-SDC w/ %"});
  auto& base = bench.apps(false);
  auto& hard = bench.apps(true);
  std::size_t residual = 0, increased = 0;
  for (std::size_t a = 0; a < base.size(); ++a) {
    for (const std::string& kernel : base[a].kernels) {
      const double before =
          bench.kernel_reliability(base[a], kernel).chip_avf(bench.bits()).sdc;
      const double after =
          bench.kernel_reliability(hard[a], kernel).chip_avf(bench.bits()).sdc;
      residual += after > 0.0;
      increased += after > before;
      table.add_row({bench.kernel_label(base[a], kernel), bench::pct(before),
                     bench::pct(after)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Kernels with residual AVF-SDC after TMR: %zu; with *increased* SDC: %zu\n"
              "(paper: residual SDCs persist for several kernels; SRADv1 K2 increases)\n",
              residual, increased);
  return 0;
}
