// Ablation: validation of the derating-factor methodology (paper §II-B).
//
// gpuFI-4 cannot inject into unallocated registers (GPGPU-Sim allocates
// them dynamically), so it injects into allocated cells and multiplies the
// failure rate by DF = used_bits / total_bits. Our simulator has a real
// physical register file, so we can run the ground-truth experiment the
// methodology approximates: inject uniformly into the *whole* physical RF
// (dead cells included) and compare against FR x DF.
//
// Expected shape: AVF_df approximately equals AVF_whole, within the
// statistical margin, which validates the paper's estimator.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/fi/injectors.h"

namespace {

using namespace gras;

/// Whole-RF injection: flips a uniformly random bit of the full physical
/// register file (allocated or not) at the trigger cycle.
class WholeRfInjector final : public sim::FaultHook {
 public:
  WholeRfInjector(std::uint64_t trigger, Rng rng) : trigger_(trigger), rng_(rng) {}

  void on_cycle(sim::Gpu& gpu, std::uint64_t cycle) override {
    if (done_ || cycle < trigger_) return;
    const std::uint32_t s = static_cast<std::uint32_t>(rng_.below(gpu.num_sms()));
    sim::RegFile& rf = gpu.sm(s).regfile();
    rf.flip_bit(rng_.below(rf.bit_count()));
    done_ = true;
  }
  std::uint64_t next_trigger() const override {
    return done_ ? ~std::uint64_t{0} : trigger_;
  }

 private:
  std::uint64_t trigger_;
  Rng rng_;
  bool done_ = false;
};

}  // namespace

int main() {
  using namespace gras;
  bench::Bench bench;
  bench.print_header(
      "Ablation — derating-factor methodology vs whole-register-file injection");

  TextTable table({"Kernel", "FR(alloc) %", "DF", "AVF=FRxDF %", "AVF(whole RF) %",
                   "99% margin"});
  for (auto& ctx : bench.apps()) {
    // One representative kernel per app keeps the ablation affordable.
    const std::string kernel = ctx.kernels.front();
    const campaign::Target targets[] = {campaign::Target::RF};
    const auto campaigns = bench.sweep(ctx, kernel, targets);
    const auto& rf = campaigns.at(campaign::Target::RF);
    const double df = metrics::rf_derating(ctx.golden, kernel, bench.config());
    const double avf_df = rf.counts.failure_rate() * df;

    // Ground truth: whole-RF injections, sampled like the RF campaign.
    std::uint64_t failures = 0;
    const std::uint64_t samples = bench.samples();
    const auto indices = ctx.golden.launches_of(kernel);
    std::uint64_t window = 0;
    for (std::size_t i : indices) window += ctx.golden.launches[i].cycles();
    std::vector<std::uint64_t> outcomes(samples, 0);
    bench.pool().parallel_for(samples, [&](std::size_t i) {
      Rng rng = Rng::for_sample(bench.seed() ^ 0xab1a110full, i);
      std::uint64_t r = rng.below(window);
      std::uint64_t trigger = 0, window_end = 0;
      for (std::size_t li : indices) {
        const auto& l = ctx.golden.launches[li];
        if (r < l.cycles()) {
          trigger = l.start_cycle + 1 + r;
          window_end = l.end_cycle;
          break;
        }
        r -= l.cycles();
      }
      (void)window_end;
      WholeRfInjector hook(trigger, rng);
      sim::Gpu gpu(bench.config());
      gpu.set_launch_budgets(ctx.golden.budgets, ctx.golden.overflow_budget);
      gpu.set_fault_hook(&hook);
      const auto out = workloads::run_app(*ctx.app, gpu);
      outcomes[i] =
          (out.trap != sim::TrapKind::None || out.outputs != ctx.golden.output.outputs)
              ? 1
              : 0;
    });
    for (std::uint64_t o : outcomes) failures += o;
    const double avf_whole = static_cast<double>(failures) / static_cast<double>(samples);
    const double margin = margin_for_samples(samples, 0.99);
    table.add_row({bench.kernel_label(ctx, kernel),
                   bench::pct(rf.counts.failure_rate()), TextTable::num(df, 4),
                   bench::pct(avf_df), bench::pct(avf_whole),
                   "+/-" + bench::pct(margin)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("FR x DF should match whole-RF injection within the margin: the paper's\n"
              "derating methodology is an unbiased estimator of physical-RF AVF.\n");
  return 0;
}
