#!/usr/bin/env bash
# Two-level pruned estimation smoke test (CI): the pruned campaign path
# (--prune, DESIGN.md §14) must agree with brute force and actually prune.
#
# Three checks, all end to end through real binaries:
#  1. abl_pruned_vs_brute on two apps: for every kernel the brute-force FR
#     must fall inside the pruned estimate's population-weighted Wilson CI,
#     with >= 5x fewer executed samples (the binary exits 1 otherwise).
#  2. CLI round trip: `gras campaign --prune` runs, journals a v4 file with
#     class provenance, and `gras journal info` reads it back.
#  3. Determinism: two identical --prune runs print identical summaries.
#
# Usage: ci_prune_smoke.sh [path-to-gras-binary] [path-to-bench-binary]
set -u

GRAS=${1:-build/tools/gras}
BENCH=${2:-build/bench/abl_pruned_vs_brute}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "ci_prune_smoke: $*" >&2; exit 1; }

echo "== pruned vs brute-force: FR within CI, >= 5x reduction =="
for app in va kmeans; do
    GRAS_CACHE="$WORK/cache" GRAS_INJECTIONS=120 "$BENCH" "$app" \
        || fail "pruned estimate violated the accuracy/cost gate for $app"
done

echo "== CLI --prune round trip with a v4 journal =="
GRAS_CACHE="$WORK/cache" "$GRAS" campaign va va_k1 SVF 120 --prune \
    --journal "$WORK/va.pruned.jrnl" > "$WORK/run1.txt" \
    || fail "gras campaign --prune failed"
grep -q "pruned .* sites" "$WORK/run1.txt" || fail "missing pruned summary"
grep -q "population-weighted" "$WORK/run1.txt" || fail "missing weighted FR line"
"$GRAS" journal info "$WORK/va.pruned.jrnl" > "$WORK/info.txt" \
    || fail "gras journal info rejected the pruned journal"
grep -q "version.*4" "$WORK/info.txt" || fail "pruned journal is not v4"

echo "== determinism: identical re-run =="
GRAS_CACHE="$WORK/cache" "$GRAS" campaign va va_k1 SVF 120 --prune \
    --no-journal > "$WORK/run2.txt" || fail "second --prune run failed"
# The first run journaled and the second did not, so strip the lines that
# legitimately differ (journal path, replay/execution split).
grep -Ev "journal|executed" "$WORK/run1.txt" > "$WORK/run1.cmp"
grep -Ev "journal|executed" "$WORK/run2.txt" > "$WORK/run2.cmp"
cmp "$WORK/run1.cmp" "$WORK/run2.cmp" || fail "pruned runs diverged"

echo "== non-prunable target is rejected cleanly =="
if "$GRAS" campaign va va_k1 RF 16 --prune --no-journal 2> "$WORK/err.txt"; then
    fail "--prune accepted a microarch target"
fi
grep -q "SVF" "$WORK/err.txt" || fail "rejection message does not name SVF targets"

echo "prune smoke passed"
