#!/usr/bin/env bash
# Durable-orchestrator smoke test (CI):
#   1. run a journaled campaign to completion (reference),
#   2. start the same campaign fresh, SIGKILL it partway, resume it, and
#      require the resumed histogram to be identical to the reference,
#   3. run the campaign as two shards, merge the journals, and require the
#      merged histogram to be identical as well.
#
# Usage: ci_durable_smoke.sh [path-to-gras-binary]
set -u

GRAS=${1:-build/tools/gras}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
export GRAS_CACHE="$WORK/cache"
export GRAS_THREADS=2   # slow the campaign down so the kill lands mid-run

APP=hotspot KERNEL=hotspot_k1 TARGET=RF SAMPLES=600

histogram() { grep -E 'Masked|SDC|Timeout|DUE|FR =' "$1"; }

fail() { echo "ci_durable_smoke: $*" >&2; exit 1; }

echo "== reference run =="
"$GRAS" campaign "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
    --journal "$WORK/ref.jrnl" > "$WORK/ref.txt" || fail "reference run failed"
histogram "$WORK/ref.txt"

echo "== kill partway, then resume =="
"$GRAS" campaign "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
    --journal "$WORK/killed.jrnl" > "$WORK/killed.txt" 2>&1 &
pid=$!
sleep 2
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
status=$?
if [ "$status" -eq 0 ]; then
    echo "note: campaign finished before the kill; resume will just replay"
fi

"$GRAS" campaign "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
    --resume --journal "$WORK/killed.jrnl" > "$WORK/resumed.txt" \
    || fail "resume failed"
grep "resumed:" "$WORK/resumed.txt" || fail "resume did not replay the journal"
diff <(histogram "$WORK/ref.txt") <(histogram "$WORK/resumed.txt") \
    || fail "resumed histogram differs from the uninterrupted reference"
echo "kill/resume histogram matches the uninterrupted run"

echo "== sharded run + merge =="
for i in 0 1; do
    "$GRAS" campaign "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
        --shard "$i/2" --journal "$WORK/shard$i.jrnl" > /dev/null \
        || fail "shard $i failed"
done
"$GRAS" merge "$WORK/shard0.jrnl" "$WORK/shard1.jrnl" > "$WORK/merged.txt" \
    || fail "merge failed"
diff <(histogram "$WORK/ref.txt") <(histogram "$WORK/merged.txt") \
    || fail "merged histogram differs from the unsharded reference"
echo "2-shard merge matches the unsharded run"

echo "ci_durable_smoke: OK"
