#!/usr/bin/env python3
"""Perf-regression gate: compare a perf_sim_throughput JSON summary against
the checked-in baseline (bench/baseline_perf.json) and fail on regression.

Usage: check_bench.py BASELINE_JSON CURRENT_JSON [--tolerance FRACTION]

Gated metrics (relative, machine-speed-independent ratios):
  - backend_speedup_late_svf       higher is better; must not drop more than
                                   `tolerance` (default 0.15) below baseline.
  - batch_speedup_same_kernel_svf  same rule: batched lock-step execution of
                                   same-kernel SVF samples vs one-at-a-time.
  - trace_enabled_overhead_pct     lower is better; must not rise more than
                                   10 percentage points above baseline.

Absolute metrics (samples/sec, ms/sample, ns costs) vary with the host and
are printed side by side for context only.

Exit codes: 0 pass, 1 regression (or malformed input), 2 usage error.
"""

import json
import sys

GATED_RATIOS = ["backend_speedup_late_svf", "batch_speedup_same_kernel_svf"]
GATED_OVERHEAD = "trace_enabled_overhead_pct"
OVERHEAD_SLACK_PCT_POINTS = 10.0
DEFAULT_TOLERANCE = 0.15

INFORMATIONAL = [
    "campaign_samples",
    "samples_per_sec_untraced",
    "samples_per_sec_traced",
    "disabled_span_cost_ns",
    "backend_late_svf_samples",
    "backend_timing_ms_per_sample",
    "backend_functional_ms_per_sample",
    "batch_lanes",
    "batch_unbatched_ms_per_sample",
    "batch_batched_ms_per_sample",
    "sample_latency_p50_ms",
    "sample_latency_p95_ms",
]


def fail(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def is_number(value):
    # bool is a subclass of int, but True/False in a metric slot is a bug in
    # the producer, not a measurement — treat it as malformed.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def cell(value):
    """Right-aligned table cell for any JSON value.

    Informational keys are printed verbatim, and a summary produced by a
    newer (or broken) bench may hold a list/dict/bool there; str() first so
    the alignment format spec never hits a non-scalar (TypeError)."""
    return f"{str(value):>12}"


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {path}: {err}")
    if not isinstance(doc, dict):
        fail(f"{path}: expected a JSON object")
    return doc


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = DEFAULT_TOLERANCE
    for a in argv[1:]:
        if a.startswith("--tolerance"):
            try:
                tolerance = float(a.split("=", 1)[1])
            except (IndexError, ValueError):
                print(__doc__, file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline, current = load(args[0]), load(args[1])

    print(f"{'metric':<36} {'baseline':>12} {'current':>12}")
    for key in INFORMATIONAL:
        b = baseline.get(key, "-")
        c = current.get(key, "-")
        print(f"{key:<36} {cell(b)} {cell(c)}")

    for key in GATED_RATIOS + [GATED_OVERHEAD]:
        for name, doc in ((args[0], baseline), (args[1], current)):
            if key not in doc:
                fail(f"{name}: missing gated metric '{key}'")
            if not is_number(doc[key]):
                fail(f"{name}: gated metric '{key}' is not a number "
                     f"(got {json.dumps(doc[key])})")

    ok = True

    for key in GATED_RATIOS:
        b, c = baseline[key], current[key]
        floor = b * (1.0 - tolerance)
        verdict = "ok" if c >= floor else "REGRESSION"
        print(f"{key:<36} {b:>12} {c:>12}  (floor {floor:.2f}: {verdict})")
        if c < floor:
            ok = False

    b, c = baseline[GATED_OVERHEAD], current[GATED_OVERHEAD]
    ceiling = b + OVERHEAD_SLACK_PCT_POINTS
    verdict = "ok" if c <= ceiling else "REGRESSION"
    print(f"{GATED_OVERHEAD:<36} {b:>12} {c:>12}  (ceiling {ceiling:.1f}: {verdict})")
    if c > ceiling:
        ok = False

    if not ok:
        fail(f"performance regressed beyond tolerance ({tolerance:.0%})")
    print("check_bench: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
