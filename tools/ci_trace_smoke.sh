#!/usr/bin/env bash
# Observability smoke test (CI):
#   1. run a small traced campaign (--trace + JSONL progress),
#   2. validate the trace file's schema and per-thread span nesting,
#   3. require `gras stats` to be byte-identical across invocations, on
#      both the trace file and the journal,
#   4. require the JSONL stream to open with a build record and to carry
#      at least one metrics record.
#
# Usage: ci_trace_smoke.sh [path-to-gras-binary] [trace-output-path]
# The trace file is left at trace-output-path (default gras_smoke.trace.json)
# so CI can upload it as an artifact.
set -u

GRAS=${1:-build/tools/gras}
TRACE=${2:-gras_smoke.trace.json}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
export GRAS_CACHE="$WORK/cache"

fail() { echo "ci_trace_smoke: $*" >&2; exit 1; }

echo "== version =="
"$GRAS" --version || fail "--version failed"

echo "== traced campaign =="
"$GRAS" campaign hotspot hotspot_k1 RF 200 \
    --journal "$WORK/smoke.jrnl" --trace "$TRACE" \
    --progress "jsonl=$WORK/progress.jsonl" \
    > "$WORK/campaign.txt" || fail "traced campaign failed"
[ -s "$TRACE" ] || fail "campaign did not write the trace file"

echo "== trace schema + nesting =="
python3 "$(dirname "$0")/check_trace.py" "$TRACE" || fail "trace validation failed"

echo "== stats determinism =="
"$GRAS" stats "$TRACE" > "$WORK/stats1.txt" || fail "stats <trace> failed"
"$GRAS" stats "$TRACE" > "$WORK/stats2.txt" || fail "stats <trace> rerun failed"
diff "$WORK/stats1.txt" "$WORK/stats2.txt" \
    || fail "stats <trace> is not deterministic"
grep -q "Phase" "$WORK/stats1.txt" || fail "stats <trace> lacks the phase table"
"$GRAS" stats "$WORK/smoke.jrnl" > "$WORK/jstats1.txt" \
    || fail "stats <journal> failed"
"$GRAS" stats "$WORK/smoke.jrnl" > "$WORK/jstats2.txt" \
    || fail "stats <journal> rerun failed"
diff "$WORK/jstats1.txt" "$WORK/jstats2.txt" \
    || fail "stats <journal> is not deterministic"
grep -q "build" "$WORK/jstats1.txt" || fail "stats <journal> lacks provenance"
cat "$WORK/stats1.txt"

echo "== JSONL stream shape =="
head -1 "$WORK/progress.jsonl" | grep -q '"type":"build"' \
    || fail "JSONL does not open with a build record"
grep -q '"type":"progress"' "$WORK/progress.jsonl" \
    || fail "JSONL has no progress records"
grep -q '"type":"metrics"' "$WORK/progress.jsonl" \
    || fail "JSONL has no metrics records"

echo "ci_trace_smoke: OK"
