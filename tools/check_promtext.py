#!/usr/bin/env python3
"""Validates a Prometheus text-exposition scrape (version 0.0.4).

Checks the line grammar (# HELP / # TYPE comments, sample lines with
optional labels), metric-name and label syntax, that every sample belongs
to a family declared with # TYPE, that histogram buckets are cumulative
and end with an le="+Inf" bucket equal to the family's _count, that no
(name, labels) series repeats, and that every family named on the command
line is present with at least one sample.

Usage: check_promtext.py <metrics.txt> [required-family ...]
Exit status: 0 valid, 1 invalid, 2 usage.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
# name{labels} value  — the label block must consume everything between
# the braces, which LABEL_RE re-checks pair by pair.
SAMPLE_RE = re.compile(r"^(\S+?)(?:\{(.*)\})? ([^ ]+)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(msg):
    print(f"check_promtext: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparseable sample value {text!r}")


def base_family(name):
    """Maps histogram series names back to their declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)

    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            lines = f.read().split("\n")
    except OSError as e:
        fail(f"not readable: {e}")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        fail("empty exposition")

    types = {}      # family -> declared type
    seen = set()    # (name, labels) series identity
    sampled = set() # families with at least one sample
    buckets = {}    # (family, non-le labels) -> [(le, cumulative count)]
    counts = {}     # (family, non-le labels) -> _count value

    for i, line in enumerate(lines, 1):
        if line == "":
            fail(f"line {i}: blank line inside exposition")
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) (\S+)(?: (.*))?$", line)
            if not m:
                fail(f"line {i}: malformed comment {line!r}")
            kind, family, rest = m.groups()
            if not NAME_RE.match(family):
                fail(f"line {i}: bad metric name {family!r}")
            if kind == "TYPE":
                if rest not in TYPES:
                    fail(f"line {i}: unknown type {rest!r}")
                if family in types:
                    fail(f"line {i}: duplicate # TYPE for {family}")
                if family in sampled:
                    fail(f"line {i}: # TYPE for {family} after its samples")
                types[family] = rest
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {i}: malformed sample {line!r}")
        name, label_blob, value_text = m.groups()
        if not NAME_RE.match(name):
            fail(f"line {i}: bad metric name {name!r}")
        labels = []
        if label_blob is not None:
            consumed = LABEL_RE.sub("", label_blob).strip(",")
            if consumed:
                fail(f"line {i}: malformed labels {{{label_blob}}}")
            labels = LABEL_RE.findall(label_blob)
        value = parse_value(value_text, f"line {i}")

        series = (name, tuple(sorted(labels)))
        if series in seen:
            fail(f"line {i}: duplicate series {series}")
        seen.add(series)

        family = base_family(name)
        if family not in types:
            fail(f"line {i}: sample {name!r} has no # TYPE declaration")
        sampled.add(family)

        if types[family] == "histogram":
            others = tuple(sorted((k, v) for k, v in labels if k != "le"))
            key = (family, others)
            if name.endswith("_bucket"):
                le = [v for k, v in labels if k == "le"]
                if len(le) != 1:
                    fail(f"line {i}: _bucket needs exactly one le label")
                bound = parse_value(le[0], f"line {i}")
                buckets.setdefault(key, []).append((bound, value))
            elif name.endswith("_count"):
                counts[key] = value

    for (family, others), series in buckets.items():
        where = f"{family}{dict(others) if others else ''}"
        last = None
        for bound, cumulative in series:
            if last is not None:
                if bound <= last[0]:
                    fail(f"{where}: le bounds not increasing at le={bound}")
                if cumulative < last[1]:
                    fail(f"{where}: bucket counts not cumulative at le={bound}")
            last = (bound, cumulative)
        if last is None or last[0] != float("inf"):
            fail(f"{where}: histogram must end with an le=\"+Inf\" bucket")
        if (family, others) not in counts:
            fail(f"{where}: histogram has buckets but no _count")
        if counts[(family, others)] != last[1]:
            fail(f"{where}: +Inf bucket {last[1]} != _count "
                 f"{counts[(family, others)]}")

    for family in sys.argv[2:]:
        if family not in sampled:
            fail(f"required family {family!r} missing from the scrape")

    print(f"check_promtext: OK ({len(seen)} series, {len(types)} families)")


if __name__ == "__main__":
    main()
