#!/usr/bin/env bash
# Batched-execution A/B smoke test (CI): batched lock-step sample execution
# (--batch / GRAS_BATCH, DESIGN.md §12) must be bit-identical to running
# every sample on its own simulator instance.
#
# Two checks, both end to end through real binaries:
#  1. Journal byte-diff: the same campaign run through the CLI with
#     --batch 8 and --batch 1 must produce byte-identical journal files —
#     per-sample outcomes, fault-site provenance, corruption signatures and
#     append order all match. GRAS_THREADS=1 pins the unbatched append
#     order to ascending sample index (batched runs append at chunk
#     boundaries in ascending order regardless), so the files are
#     comparable byte for byte.
#  2. Cache diff on the reduced fig01 sweep: the bench cache honours the
#     ambient GRAS_BATCH, so the whole figure-level sweep run at batch 8
#     and batch 1 must leave byte-identical campaign results on disk.
#
# Usage: ci_batch_smoke.sh [path-to-gras-binary] [path-to-fig01-binary]
set -u

GRAS=${1:-build/tools/gras}
FIG01=${2:-build/bench/fig01_app_avf_svf}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "ci_batch_smoke: $*" >&2; exit 1; }

echo "== journal byte-diff: gras campaign --batch 8 vs --batch 1 =="
for target in RF SVF; do
    GRAS_THREADS=1 "$GRAS" campaign va va_k1 "$target" 48 \
        --batch 8 --journal "$WORK/b8.$target.jrnl" \
        || fail "batched campaign ($target) failed"
    GRAS_THREADS=1 "$GRAS" campaign va va_k1 "$target" 48 \
        --batch 1 --journal "$WORK/b1.$target.jrnl" \
        || fail "unbatched campaign ($target) failed"
    cmp "$WORK/b8.$target.jrnl" "$WORK/b1.$target.jrnl" \
        || fail "journals diverged for target $target"
done

echo "== batched fig01 sweep (GRAS_BATCH=8) =="
GRAS_BATCH=8 GRAS_CACHE="$WORK/batch8_cache" GRAS_JOURNAL_DIR="$WORK/j8" \
    GRAS_INJECTIONS=20 "$FIG01" || fail "batched sweep failed"

echo "== unbatched fig01 sweep (GRAS_BATCH=1) =="
GRAS_BATCH=1 GRAS_CACHE="$WORK/batch1_cache" GRAS_JOURNAL_DIR="$WORK/j1" \
    GRAS_INJECTIONS=20 "$FIG01" || fail "unbatched sweep failed"

echo "== A/B diff =="
diff -r "$WORK/batch8_cache" "$WORK/batch1_cache" || fail "batch sizes diverged"
echo "batch A/B byte-identical"
