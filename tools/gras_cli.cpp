// gras — command-line front end to the library.
//
//   gras list                          benchmarks and their kernels
//   gras run <app>                     fault-free run + per-launch stats
//   gras disasm <app> [kernel]         disassemble kernels
//   gras asm <file.sasm>               assemble & validate a kernel file
//   gras campaign <app> <kernel> <target> [samples] [flags]
//                                      one fault-injection campaign, journaled
//                                      and crash-safe by default:
//       --shard i/N      run sample-index stride i of N (own journal shard)
//       --resume         continue a killed/preempted campaign's journal
//       --batch K        run up to K samples per simulator instance with
//                        batched lock-step execution (default GRAS_BATCH or
//                        1); results and journals stay bit-identical
//       --margin <pct>   stop once the 99% Wilson CI half-width <= pct points
//       --prune          two-level estimation (DESIGN.md §14): partition the
//                        fault-site space into equivalence classes, inject one
//                        representative per class, weight by class population
//                        (SVF / SVF-LD only; incompatible with --shard)
//       --progress stderr|jsonl[=path]   live progress snapshots
//       --journal <path> explicit journal file (default under GRAS_JOURNAL_DIR)
//       --no-journal     in-memory run (no crash safety)
//       --metrics-port N serve Prometheus /metrics on port N while the
//                        campaign runs (0 = ephemeral; see --metrics-port-file)
//       --metrics-port-file f  write the bound /metrics port to f
//   gras serve <app> <kernel> <target> [samples] --listen host:port [flags]
//                                      coordinate a distributed campaign:
//                                      lease sample ranges to workers, append
//                                      their records to one canonical journal
//                                      in sample order, early-stop fleet-wide
//       --listen h:p     bind address (port 0 = ephemeral; see --port-file)
//       --port-file f    write the bound port to f once listening
//       --lease N        samples per lease (default 256)
//       --heartbeat-sec S  worker heartbeat period (default 2)
//       --lease-ttl S    lease silence budget before reassignment (default 10)
//       plus --resume --margin --batch --journal --progress
//       --metrics-port --metrics-port-file as in campaign (the serve
//       endpoint additionally exposes gras_fleet_* per-worker families)
//   gras work --connect host:port [--name s] [--threads n] [--retry-sec s]
//                                      execute leases for a coordinator;
//                                      disposable (SIGKILL-safe), reconnects
//                                      across coordinator restarts
//   gras fleet <host:port> [--watch[=sec]] [--json]
//                                      live status from a serving
//                                      coordinator: campaign aggregates plus
//                                      a per-worker table (state, throughput,
//                                      heartbeat age); --watch refreshes
//                                      every 2s (or the given period), --json
//                                      prints one machine-readable line per
//                                      snapshot
//   gras journal info <journal>        header provenance, fingerprint, record
//                                      count, torn-tail status
//   gras journal dump <journal>        one line per record: index, outcome,
//                                      cycles, canonical record bytes (hex) —
//                                      sort | diff compares campaigns
//   gras merge <journal>...            recombine the shards of one campaign
//   gras anatomy <journal>...          SDC corruption-pattern report per
//                                      campaign (v2 journals carry per-SDC
//                                      corruption signatures)
//   gras replay <journal> [<seed>:]<index> [--trace]
//                                      re-execute one journaled sample
//                                      bit-identically and diff it against
//                                      the record; --trace dumps the fault
//                                      site and first divergent output words
//   gras reuse <app> <kernel>          register-reuse summary (Fig. 12)
//   gras stats <journal|trace>         deterministic summary tables: journal
//                                      header + outcome histogram, or a trace
//                                      file's per-phase time breakdown and
//                                      counter table (docs/observability.md)
//   gras --version                     build provenance (git SHA, compiler)
//
// `gras campaign --trace <file>` records phase spans during the campaign and
// writes Chrome/Perfetto trace-event JSON (open at https://ui.perfetto.dev
// or feed to `gras stats`). Distinct from `gras replay ... --trace`, which
// dumps the fault site of one replayed sample.
//
// Exit codes (all commands): 0 success; 1 runtime failure (I/O error, replay
// divergence, failed assembly); 2 usage error (unknown command/app/kernel/
// target/flag, malformed arguments).
//
// Targets: RF SMEM L1D L1T L2 SVF SVF-LD SVF-SRC1 SVF-REUSE.
// Environment: GRAS_CONFIG, GRAS_SEED, GRAS_THREADS, GRAS_BATCH,
// GRAS_JOURNAL_DIR, GRAS_JOURNAL_FSYNC, GRAS_TRACE, GRAS_TRACE_BUF (see
// README).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/analysis/anatomy.h"
#include "src/analysis/prune.h"
#include "src/assembler/assembler.h"
#include "src/campaign/campaign.h"
#include "src/common/build_info.h"
#include "src/common/env.h"
#include "src/common/promtext.h"
#include "src/common/table.h"
#include "src/common/trace.h"
#include "src/fabric/coordinator.h"
#include "src/fabric/fleet.h"
#include "src/fabric/wire.h"
#include "src/fabric/worker.h"
#include "src/isa/disasm.h"
#include "src/orchestrator/orchestrator.h"
#include "src/orchestrator/replay.h"
#include "src/workloads/workload.h"

namespace {

using namespace gras;

int usage() {
  std::fprintf(stderr,
               "usage: gras <command> [...]\n"
               "  list\n"
               "  run <app>\n"
               "  disasm <app> [kernel]\n"
               "  asm <file.sasm>\n"
               "  campaign <app> <kernel> <target> [samples]\n"
               "           [--shard i/N] [--resume] [--margin pct] [--batch K]\n"
               "           [--prune] [--progress stderr|jsonl[=path]]\n"
               "           [--journal path] [--no-journal] [--trace file]\n"
               "           [--metrics-port N] [--metrics-port-file path]\n"
               "  serve <app> <kernel> <target> [samples] --listen host:port\n"
               "           [--port-file path] [--lease N] [--heartbeat-sec S]\n"
               "           [--lease-ttl S] [--resume] [--margin pct] [--batch K]\n"
               "           [--journal path] [--progress stderr|jsonl[=path]]\n"
               "           [--metrics-port N] [--metrics-port-file path]\n"
               "  work --connect host:port [--name s] [--threads n] [--retry-sec s]\n"
               "  fleet <host:port> [--watch[=sec]] [--json]\n"
               "  journal info <journal>\n"
               "  journal dump <journal>\n"
               "  merge <journal>...\n"
               "  anatomy <journal>...\n"
               "  replay <journal> [<seed>:]<index> [--trace]\n"
               "  reuse <app> <kernel>\n"
               "  stats <journal|trace-file>\n"
               "  --version\n"
               "apps: ");
  for (const auto& name : workloads::benchmark_names()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

sim::GpuConfig config() { return sim::make_config(env_config()); }

/// How often `--progress jsonl` interleaves {"type":"metrics"} registry
/// snapshots between progress records (always one more at done).
constexpr double kMetricsIntervalSec = 2.0;

int cmd_list() {
  TextTable table({"App", "Kernels", "Buffers", "Output bytes"});
  for (const auto& app : workloads::make_all_benchmarks()) {
    std::string kernels;
    for (const auto& k : app->kernels()) {
      if (!kernels.empty()) kernels += ", ";
      kernels += k.name;
    }
    std::uint64_t out_bytes = 0;
    for (const auto& b : app->buffers()) {
      if (b.is_output()) out_bytes += b.bytes;
    }
    table.add_row({app->name(), kernels, std::to_string(app->buffers().size()),
                   std::to_string(out_bytes)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_run(const std::string& app_name) {
  const auto app = workloads::make_benchmark(app_name);
  sim::Gpu gpu(config());
  const auto out = workloads::run_app(*app, gpu);
  std::printf("%s: %s, %llu total cycles, %zu launches\n", app_name.c_str(),
              out.completed() ? "completed" : sim::trap_name(out.trap),
              static_cast<unsigned long long>(gpu.cycle()), gpu.launches().size());
  TextTable table({"#", "Kernel", "Grid", "Block", "Cycles", "WarpInstr", "L1D acc",
                   "L1D miss%", "L2 acc", "Occupancy%"});
  std::size_t i = 0;
  for (const auto& l : gpu.launches()) {
    const auto dim = [](sim::Dim3 d) {
      std::string s = std::to_string(d.x);
      if (d.y > 1 || d.z > 1) s += "x" + std::to_string(d.y);
      if (d.z > 1) s += "x" + std::to_string(d.z);
      return s;
    };
    table.add_row({std::to_string(++i), l.kernel, dim(l.grid), dim(l.block),
                   std::to_string(l.cycles()), std::to_string(l.stats.warp_instrs),
                   std::to_string(l.stats.l1d.accesses),
                   TextTable::pct(l.stats.l1d.miss_rate(), 1),
                   std::to_string(l.stats.l2.accesses),
                   TextTable::pct(l.stats.occupancy(gpu.config().max_warps_per_sm), 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_disasm(const std::string& app_name, const char* kernel) {
  const auto app = workloads::make_benchmark(app_name);
  for (const auto& k : app->kernels()) {
    if (kernel != nullptr && k.name != kernel) continue;
    std::printf("%s\n", isa::disassemble(k).c_str());
  }
  return 0;
}

int cmd_asm(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gras: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const auto kernels = assembler::assemble(text.str());
    for (const auto& k : kernels) {
      std::printf("%s: %zu instructions, %d regs/thread, %u B smem, %zu params\n",
                  k.name.c_str(), k.code.size(), k.num_regs, k.smem_bytes,
                  k.params.size());
    }
    std::printf("OK\n");
    return 0;
  } catch (const assembler::AsmError& e) {
    std::fprintf(stderr, "gras: %s\n", e.what());
    return 1;
  }
}

/// Prints the outcome histogram + failure-rate line shared by `campaign`
/// and `merge`.
void print_histogram(const campaign::CampaignResult& r) {
  TextTable table({"Outcome", "Count", "%"});
  table.add_row({"Masked", std::to_string(r.counts.masked),
                 TextTable::pct(r.counts.pct(fi::Outcome::Masked))});
  table.add_row({"SDC", std::to_string(r.counts.sdc),
                 TextTable::pct(r.counts.pct(fi::Outcome::SDC))});
  table.add_row({"Timeout", std::to_string(r.counts.timeout),
                 TextTable::pct(r.counts.pct(fi::Outcome::Timeout))});
  table.add_row({"DUE", std::to_string(r.counts.due),
                 TextTable::pct(r.counts.pct(fi::Outcome::DUE))});
  std::printf("%s", table.render().c_str());
  const auto ci = r.fr_ci();
  std::printf("FR = %s%%  99%% CI [%s%%, %s%%]  control-path masked = %llu\n",
              TextTable::pct(r.counts.failure_rate()).c_str(),
              TextTable::pct(ci.lower).c_str(), TextTable::pct(ci.upper).c_str(),
              static_cast<unsigned long long>(r.control_path_masked));
}

/// Flags accepted by `gras campaign` after the positional arguments.
struct CampaignFlags {
  orchestrator::ShardSpec shard;
  bool resume = false;
  bool journaled = true;
  double margin = 0.0;  // fraction
  std::uint64_t batch = 0;  // 0 = use the GRAS_BATCH env default
  bool prune = false;       // two-level estimation with fault-site pruning
  std::string journal;
  std::string progress;  // "", "stderr", "jsonl", "jsonl=path"
  std::string trace;     // Perfetto trace output path ("" = GRAS_TRACE env)
  std::int32_t metrics_port = -1;  // -1 = no /metrics listener, 0 = ephemeral
  std::string metrics_port_file;
};

/// Parses argv[from..), leaving positionals untouched. Throws
/// std::invalid_argument on malformed flags.
CampaignFlags parse_campaign_flags(int argc, char** argv, int from) {
  CampaignFlags flags;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--shard") {
      const std::string v = need_value("--shard");
      const std::size_t slash = v.find('/');
      char* end = nullptr;
      if (slash == std::string::npos) {
        throw std::invalid_argument("--shard expects i/N, e.g. --shard 0/4");
      }
      flags.shard.index =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), &end, 10));
      flags.shard.count = static_cast<std::uint32_t>(
          std::strtoul(v.c_str() + slash + 1, &end, 10));
      if (flags.shard.count == 0 || flags.shard.index >= flags.shard.count) {
        throw std::invalid_argument("--shard " + v + " is out of range");
      }
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--no-journal") {
      flags.journaled = false;
    } else if (arg == "--margin") {
      flags.margin = std::strtod(need_value("--margin").c_str(), nullptr) / 100.0;
      if (flags.margin <= 0.0 || flags.margin >= 1.0) {
        throw std::invalid_argument("--margin expects percentage points in (0, 100)");
      }
    } else if (arg == "--batch") {
      const std::string v = need_value("--batch");
      char* end = nullptr;
      flags.batch = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || flags.batch == 0) {
        throw std::invalid_argument("--batch expects a positive sample count");
      }
    } else if (arg == "--prune") {
      flags.prune = true;
    } else if (arg == "--journal") {
      flags.journal = need_value("--journal");
    } else if (arg == "--trace") {
      flags.trace = need_value("--trace");
      if (flags.trace.empty() || flags.trace == "0") {
        throw std::invalid_argument("--trace needs an output file path");
      }
    } else if (arg == "--progress") {
      flags.progress = need_value("--progress");
      const bool ok = flags.progress == "stderr" || flags.progress == "jsonl" ||
                      flags.progress.rfind("jsonl=", 0) == 0;
      if (!ok) {
        throw std::invalid_argument("--progress expects stderr or jsonl[=path]");
      }
    } else if (arg == "--metrics-port") {
      const std::string v = need_value("--metrics-port");
      char* end = nullptr;
      const long p = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || p < 0 || p > 65535) {
        throw std::invalid_argument("--metrics-port expects a port (0 = ephemeral)");
      }
      flags.metrics_port = static_cast<std::int32_t>(p);
    } else if (arg == "--metrics-port-file") {
      flags.metrics_port_file = need_value("--metrics-port-file");
    } else {
      throw std::invalid_argument("unknown flag '" + arg + "'");
    }
  }
  return flags;
}

int cmd_campaign(const std::string& app_name, const std::string& kernel,
                 const std::string& target, std::uint64_t samples,
                 const CampaignFlags& flags) {
  const auto parsed_target = campaign::target_from_name(target);
  if (!parsed_target) {
    std::fprintf(stderr, "gras: unknown target '%s'; valid targets:", target.c_str());
    for (campaign::Target t : campaign::kAllTargets) {
      std::fprintf(stderr, " %s", campaign::target_name(t));
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto apps = workloads::benchmark_names();
  if (std::find(apps.begin(), apps.end(), app_name) == apps.end()) {
    std::fprintf(stderr, "gras: unknown app '%s'; valid apps:", app_name.c_str());
    for (const auto& name : apps) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  // --trace wins over the GRAS_TRACE environment default. Tracing starts
  // before the golden run so its sim.launch spans are captured too.
  const std::string trace_path = flags.trace.empty() ? env_trace_path() : flags.trace;
  if (!trace_path.empty()) {
    trace::set_thread_name("gras-main");
    trace::start();
  }

  const auto app = workloads::make_benchmark(app_name);
  const auto cfg = config();
  const auto golden = [&] {
    const trace::Span span("golden", "phase");
    return campaign::run_golden(*app, cfg);
  }();
  if (golden.launches_of(kernel).empty()) {
    std::fprintf(stderr, "gras: app '%s' has no kernel '%s'; its kernels are:",
                 app_name.c_str(), kernel.c_str());
    for (const auto& name : golden.kernel_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  ThreadPool pool(static_cast<std::size_t>(env_threads()));
  campaign::CampaignSpec spec;
  spec.kernel = kernel;
  spec.target = *parsed_target;
  spec.samples = samples;
  spec.seed = env_seed();

  orchestrator::DurableOptions options;
  options.shard = flags.shard;
  options.resume = flags.resume;
  options.journaled = flags.journaled;
  options.margin = flags.margin;
  options.batch = flags.batch != 0 ? flags.batch : env_batch();
  if (!flags.journal.empty()) options.journal = flags.journal;
  std::unique_ptr<orchestrator::ProgressSink> sink;
  if (flags.progress == "stderr") {
    sink = std::make_unique<orchestrator::StderrProgress>();
  } else if (flags.progress == "jsonl") {
    sink = std::make_unique<orchestrator::JsonlProgress>("-", kMetricsIntervalSec);
  } else if (!flags.progress.empty()) {
    sink = std::make_unique<orchestrator::JsonlProgress>(
        flags.progress.substr(std::strlen("jsonl=")), kMetricsIntervalSec);
  }
  options.progress = sink.get();

  // Optional embedded /metrics listener. MetricsProgress tees each progress
  // snapshot into progress.* gauges so the scrape shows live campaign state,
  // not just the counters. Bind failure is a warning: metrics never gate a
  // campaign.
  promtext::MetricsHttpServer metrics_server;
  orchestrator::MetricsProgress metrics_progress;
  orchestrator::TeeProgress metrics_tee(sink.get(), &metrics_progress);
  if (flags.metrics_port >= 0) {
    std::string metrics_error;
    const bool up = metrics_server.start(
        "", static_cast<std::uint16_t>(flags.metrics_port),
        [] {
          return promtext::render_registry(
              telemetry::Registry::instance().snapshot());
        },
        &metrics_error);
    if (up) {
      options.progress = &metrics_tee;
      std::fprintf(stderr, "metrics: http://127.0.0.1:%u/metrics\n",
                   static_cast<unsigned>(metrics_server.port()));
      if (!flags.metrics_port_file.empty()) {
        std::string file_error;
        if (!promtext::write_port_file(flags.metrics_port_file,
                                       metrics_server.port(), &file_error)) {
          std::fprintf(stderr, "gras: cannot write --metrics-port-file: %s\n",
                       file_error.c_str());
        }
      }
    } else {
      std::fprintf(stderr, "gras: /metrics listener disabled: %s\n",
                   metrics_error.c_str());
    }
  }

  const auto finish_trace = [&]() -> int {
    if (!trace_path.empty()) {
      trace::stop();
      if (!trace::write_file(trace_path)) {
        std::fprintf(stderr, "gras: cannot write trace '%s'\n", trace_path.c_str());
        return 1;
      }
      std::printf("trace: %s\n", trace_path.c_str());
    }
    return 0;
  };

  if (flags.prune) {
    if (!campaign::prunable(spec.target)) {
      std::fprintf(stderr,
                   "gras: --prune supports software destination targets only "
                   "(SVF, SVF-LD); %s stays brute-force\n",
                   target.c_str());
      return 2;
    }
    if (flags.shard.count > 1) {
      std::fprintf(stderr, "gras: --prune cannot combine with --shard "
                           "(classes, not index strides, partition the work)\n");
      return 2;
    }
    const campaign::PruneClassing classing = [&] {
      const trace::Span span("prune.classify", "phase");
      return analysis::build_prune_classing(*app, cfg, golden, spec);
    }();
    const auto pruned =
        orchestrator::run_pruned_durable(*app, cfg, golden, spec, classing, pool, options);
    const campaign::PrunedEstimate& est = pruned.result.estimate;
    const campaign::PrunePlan& plan = pruned.result.plan;
    std::printf("%s / %s / %s: pruned %llu sites -> %llu classes "
                "(%llu derated dead sites)\n",
                app_name.c_str(), kernel.c_str(), target.c_str(),
                static_cast<unsigned long long>(classing.total_sites),
                static_cast<unsigned long long>(classing.class_population.size()),
                static_cast<unsigned long long>(classing.dead_sites()));
    std::printf("representatives: %llu planned covering %llu of %llu live sites "
                "(scan examined %llu indices); %llu executed, %llu replayed, "
                "%llu injected\n",
                static_cast<unsigned long long>(pruned.planned),
                static_cast<unsigned long long>(plan.covered_population),
                static_cast<unsigned long long>(classing.live_sites()),
                static_cast<unsigned long long>(plan.scanned),
                static_cast<unsigned long long>(pruned.executed),
                static_cast<unsigned long long>(pruned.replayed),
                static_cast<unsigned long long>(pruned.result.injected));
    if (pruned.early_stopped) {
      std::printf("early stop: weighted CI margin %s%% reached after %llu "
                  "representatives\n",
                  TextTable::pct(flags.margin).c_str(),
                  static_cast<unsigned long long>(pruned.result.raw.total()));
    }
    TextTable table({"Outcome", "Weight (sites)", "%", "Raw reps"});
    const double total = static_cast<double>(est.total_sites);
    const auto weight_row = [&](const char* name, double w, std::uint64_t raw) {
      table.add_row({name, TextTable::num(w, 1),
                     TextTable::pct(total > 0 ? w / total : 0.0),
                     std::to_string(raw)});
    };
    weight_row("Masked", est.masked_w, pruned.result.raw.masked);
    weight_row("SDC", est.sdc_w, pruned.result.raw.sdc);
    weight_row("Timeout", est.timeout_w, pruned.result.raw.timeout);
    weight_row("DUE", est.due_w, pruned.result.raw.due);
    std::printf("%s", table.render().c_str());
    const auto ci = est.fr_ci(options.confidence);
    std::printf("FR = %s%%  99%% CI [%s%%, %s%%]  (population-weighted)\n",
                TextTable::pct(est.failure_rate()).c_str(),
                TextTable::pct(ci.lower).c_str(), TextTable::pct(ci.upper).c_str());
    const std::uint64_t executed_total = pruned.result.raw.total();
    if (executed_total > 0 && samples > 0) {
      std::printf("reduction: %llu brute-force samples -> %llu representatives "
                  "(%.1fx fewer)\n",
                  static_cast<unsigned long long>(samples),
                  static_cast<unsigned long long>(executed_total),
                  static_cast<double>(samples) / static_cast<double>(executed_total));
    }
    if (!pruned.journal.empty()) {
      std::printf("journal: %s\n", pruned.journal.string().c_str());
    }
    return finish_trace();
  }

  const auto durable =
      orchestrator::run_durable(*app, cfg, golden, spec, pool, options);
  const auto& r = durable.result;
  std::printf("%s / %s / %s: %llu samples (%llu injected)\n", app_name.c_str(),
              kernel.c_str(), target.c_str(),
              static_cast<unsigned long long>(r.counts.total()),
              static_cast<unsigned long long>(r.injected));
  if (flags.shard.count > 1) {
    std::printf("shard %u/%u: %llu of %llu campaign samples\n", flags.shard.index,
                flags.shard.count,
                static_cast<unsigned long long>(durable.shard_samples),
                static_cast<unsigned long long>(samples));
  }
  if (durable.replayed > 0) {
    std::printf("resumed: %llu samples replayed from journal, %llu executed\n",
                static_cast<unsigned long long>(durable.replayed),
                static_cast<unsigned long long>(durable.executed));
  }
  if (durable.early_stopped) {
    std::printf("early stop: CI margin %s%% reached after %llu samples\n",
                TextTable::pct(flags.margin).c_str(),
                static_cast<unsigned long long>(r.counts.total()));
  }
  print_histogram(r);
  if (!durable.journal.empty()) {
    std::printf("journal: %s\n", durable.journal.string().c_str());
  }
  if (!trace_path.empty()) {
    trace::stop();
    if (!trace::write_file(trace_path)) {
      std::fprintf(stderr, "gras: cannot write trace '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace: %s\n", trace_path.c_str());
  }
  return 0;
}

/// Flags accepted by `gras serve` after the positional arguments.
struct ServeFlags {
  std::string listen;  // "host:port" (required)
  std::string port_file;
  std::uint64_t lease = 256;
  double heartbeat_sec = 2.0;
  double lease_ttl_sec = 10.0;
  bool resume = false;
  double margin = 0.0;  // fraction
  std::uint64_t batch = 0;  // 0 = GRAS_BATCH env default
  std::string journal;
  std::string progress;
  std::int32_t metrics_port = -1;  // -1 = no /metrics listener, 0 = ephemeral
  std::string metrics_port_file;
};

ServeFlags parse_serve_flags(int argc, char** argv, int from) {
  ServeFlags flags;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    const auto need_positive = [&](const char* flag) {
      const std::string v = need_value(flag);
      const double d = std::strtod(v.c_str(), nullptr);
      if (d <= 0.0) {
        throw std::invalid_argument(std::string(flag) + " expects a positive value");
      }
      return d;
    };
    if (arg == "--listen") {
      flags.listen = need_value("--listen");
    } else if (arg == "--port-file") {
      flags.port_file = need_value("--port-file");
    } else if (arg == "--lease") {
      flags.lease = static_cast<std::uint64_t>(need_positive("--lease"));
    } else if (arg == "--heartbeat-sec") {
      flags.heartbeat_sec = need_positive("--heartbeat-sec");
    } else if (arg == "--lease-ttl") {
      flags.lease_ttl_sec = need_positive("--lease-ttl");
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--margin") {
      flags.margin = std::strtod(need_value("--margin").c_str(), nullptr) / 100.0;
      if (flags.margin <= 0.0 || flags.margin >= 1.0) {
        throw std::invalid_argument("--margin expects percentage points in (0, 100)");
      }
    } else if (arg == "--batch") {
      flags.batch = static_cast<std::uint64_t>(need_positive("--batch"));
    } else if (arg == "--journal") {
      flags.journal = need_value("--journal");
    } else if (arg == "--progress") {
      flags.progress = need_value("--progress");
      const bool ok = flags.progress == "stderr" || flags.progress == "jsonl" ||
                      flags.progress.rfind("jsonl=", 0) == 0;
      if (!ok) {
        throw std::invalid_argument("--progress expects stderr or jsonl[=path]");
      }
    } else if (arg == "--metrics-port") {
      const std::string v = need_value("--metrics-port");
      char* end = nullptr;
      const long p = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || p < 0 || p > 65535) {
        throw std::invalid_argument("--metrics-port expects a port (0 = ephemeral)");
      }
      flags.metrics_port = static_cast<std::int32_t>(p);
    } else if (arg == "--metrics-port-file") {
      flags.metrics_port_file = need_value("--metrics-port-file");
    } else {
      throw std::invalid_argument("unknown flag '" + arg + "'");
    }
  }
  if (flags.listen.empty()) {
    throw std::invalid_argument("serve requires --listen host:port");
  }
  return flags;
}

int cmd_serve(const std::string& app_name, const std::string& kernel,
              const std::string& target, std::uint64_t samples,
              const ServeFlags& flags) {
  const auto parsed_target = campaign::target_from_name(target);
  if (!parsed_target) {
    std::fprintf(stderr, "gras: unknown target '%s'\n", target.c_str());
    return 2;
  }
  const auto app = workloads::make_benchmark(app_name);
  if (!app) {
    std::fprintf(stderr, "gras: unknown app '%s'\n", app_name.c_str());
    return 2;
  }
  const auto address = fabric::parse_address(flags.listen);
  if (!address) {
    std::fprintf(stderr, "gras: --listen expects host:port, got '%s'\n",
                 flags.listen.c_str());
    return 2;
  }

  campaign::CampaignSpec spec;
  spec.kernel = kernel;
  spec.target = *parsed_target;
  spec.samples = samples;
  spec.seed = env_seed();

  fabric::ServeOptions options;
  options.host = address->first;
  options.port = address->second;
  if (!flags.port_file.empty()) options.port_file = flags.port_file;
  if (!flags.journal.empty()) options.journal = flags.journal;
  options.resume = flags.resume;
  options.margin = flags.margin;
  options.lease = flags.lease;
  options.heartbeat_sec = flags.heartbeat_sec;
  options.lease_ttl_sec = flags.lease_ttl_sec;
  options.batch = flags.batch != 0 ? flags.batch : env_batch();
  options.metrics_port = flags.metrics_port;
  if (!flags.metrics_port_file.empty()) {
    options.metrics_port_file = flags.metrics_port_file;
  }
  std::unique_ptr<orchestrator::ProgressSink> sink;
  if (flags.progress == "stderr") {
    sink = std::make_unique<orchestrator::StderrProgress>();
  } else if (flags.progress == "jsonl") {
    sink = std::make_unique<orchestrator::JsonlProgress>("-", kMetricsIntervalSec);
  } else if (!flags.progress.empty()) {
    sink = std::make_unique<orchestrator::JsonlProgress>(
        flags.progress.substr(std::strlen("jsonl=")), kMetricsIntervalSec);
  }
  // The coordinator's /metrics scrape already folds in live fleet state, but
  // the progress.* gauges ride along for parity with plain campaigns.
  orchestrator::MetricsProgress metrics_progress;
  orchestrator::TeeProgress metrics_tee(sink.get(), &metrics_progress);
  options.progress =
      flags.metrics_port >= 0 ? static_cast<orchestrator::ProgressSink*>(&metrics_tee)
                              : sink.get();

  const auto served = fabric::serve_campaign(*app, config(), spec, options);
  const auto& r = served.result;
  std::printf("%s / %s / %s: %llu samples (%llu injected) served on port %u\n",
              app_name.c_str(), kernel.c_str(), target.c_str(),
              static_cast<unsigned long long>(r.counts.total()),
              static_cast<unsigned long long>(r.injected),
              static_cast<unsigned>(served.port));
  if (served.replayed > 0) {
    std::printf("resumed: %llu samples replayed from journal, %llu from workers\n",
                static_cast<unsigned long long>(served.replayed),
                static_cast<unsigned long long>(served.executed));
  }
  if (served.early_stopped) {
    std::printf("early stop: CI margin %s%% reached after %llu samples\n",
                TextTable::pct(flags.margin).c_str(),
                static_cast<unsigned long long>(r.counts.total()));
  }
  print_histogram(r);
  std::printf("journal: %s\n", served.journal.string().c_str());
  return 0;
}

int cmd_work(int argc, char** argv, int from) {
  fabric::WorkOptions options;
  std::string connect;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect = need_value("--connect");
    } else if (arg == "--name") {
      options.name = need_value("--name");
    } else if (arg == "--threads") {
      options.threads = std::strtoull(need_value("--threads").c_str(), nullptr, 10);
    } else if (arg == "--retry-sec") {
      options.retry_sec = std::strtod(need_value("--retry-sec").c_str(), nullptr);
      if (options.retry_sec <= 0.0) {
        throw std::invalid_argument("--retry-sec expects a positive value");
      }
    } else {
      throw std::invalid_argument("unknown flag '" + arg + "'");
    }
  }
  const auto address = fabric::parse_address(connect);
  if (!address) {
    std::fprintf(stderr, "gras: work requires --connect host:port\n");
    return 2;
  }
  options.host = address->first == "0.0.0.0" ? "127.0.0.1" : address->first;
  options.port = address->second;

  const fabric::WorkResult result = fabric::run_worker(options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "gras: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("worker done: %llu samples over %llu leases%s\n",
              static_cast<unsigned long long>(result.executed),
              static_cast<unsigned long long>(result.leases),
              result.stopped ? " (coordinator stopped the campaign)" : "");
  return 0;
}

/// `gras fleet <host:port>`: ask a serving coordinator for its FleetStatus
/// and print it — a table by default, one JSON line with --json. --watch
/// keeps the connection open and re-asks every period. Exits 0 once at
/// least one status was shown (a coordinator that finishes its campaign and
/// closes mid-watch is success, not failure), 1 when the coordinator never
/// answered, 2 on usage errors.
int cmd_fleet(int argc, char** argv, int from) {
  std::string address_arg;
  bool json = false;
  double watch_sec = 0.0;  // 0 = print one status and exit
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--watch") {
      watch_sec = 2.0;
    } else if (arg.rfind("--watch=", 0) == 0) {
      watch_sec = std::strtod(arg.c_str() + std::strlen("--watch="), nullptr);
      if (watch_sec <= 0.0) {
        throw std::invalid_argument("--watch expects a positive period in seconds");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown flag '" + arg + "'");
    } else if (address_arg.empty()) {
      address_arg = arg;
    } else {
      throw std::invalid_argument("fleet takes one host:port");
    }
  }
  const auto address = fabric::parse_address(address_arg);
  if (!address) {
    std::fprintf(stderr, "gras: fleet requires host:port\n");
    return 2;
  }
  const std::string host =
      address->first == "0.0.0.0" ? "127.0.0.1" : address->first;

  std::string error;
  fabric::Socket sock = fabric::Socket::connect_to(host, address->second, &error);
  if (!sock.valid()) {
    std::fprintf(stderr, "gras: cannot reach coordinator at %s:%u: %s\n",
                 host.c_str(), static_cast<unsigned>(address->second),
                 error.c_str());
    return 1;
  }
  bool received = false;
  for (;;) {
    if (!sock.send_frame(fabric::MsgType::Status, "")) break;
    fabric::Frame frame;
    bool got = false;
    // Skip anything that is not a StatusReply: a newer coordinator may
    // interleave frame types this build does not know.
    while (sock.recv_frame(frame, 10.0) == fabric::Socket::Recv::Frame) {
      if (frame.type == fabric::MsgType::StatusReply) {
        got = true;
        break;
      }
    }
    if (!got) break;
    fabric::FleetStatus status;
    if (!fabric::decode_fleet_status(frame.payload, status)) {
      std::fprintf(stderr, "gras: undecodable status reply from %s:%u\n",
                   host.c_str(), static_cast<unsigned>(address->second));
      return 1;
    }
    if (json) {
      std::printf("%s\n", fabric::fleet_status_json(status).c_str());
    } else {
      if (received) std::printf("\n");
      std::printf("%s", fabric::render_fleet_table(status).c_str());
    }
    std::fflush(stdout);
    received = true;
    if (watch_sec <= 0.0) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_sec));
  }
  if (received) return 0;  // campaign ended while watching
  std::fprintf(stderr, "gras: no status reply from %s:%u\n", host.c_str(),
               static_cast<unsigned>(address->second));
  return 1;
}

int cmd_journal_info(const std::filesystem::path& path) {
  const auto contents = orchestrator::read_journal(path);
  if (!contents) {
    std::fprintf(stderr, "gras: cannot read journal '%s' (missing or damaged header)\n",
                 path.string().c_str());
    return 1;
  }
  const orchestrator::JournalHeader& h = contents->header;
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(h.fingerprint()));
  TextTable table({"Field", "Value"});
  table.add_row({"version", std::to_string(contents->version)});
  table.add_row({"build", h.build.empty() ? "(pre-v3 journal)" : h.build});
  table.add_row({"fingerprint", fingerprint});
  table.add_row({"campaign", h.app + " / " + h.kernel + " / " + h.target +
                                 " / " + h.config});
  table.add_row({"samples", std::to_string(h.samples)});
  table.add_row({"seed", std::to_string(h.seed)});
  table.add_row({"shard", std::to_string(h.shard_index) + "/" +
                              std::to_string(h.shard_count)});
  if (h.margin > 0.0) {
    table.add_row({"margin", TextTable::pct(h.margin) + "% at " +
                                 TextTable::pct(h.confidence) + "% confidence"});
  }
  table.add_row({"records", std::to_string(contents->records.size())});
  table.add_row({"early stop",
                 contents->early_stop_consumed
                     ? "after " + std::to_string(*contents->early_stop_consumed) +
                           " samples"
                     : "no"});
  table.add_row({"tail", contents->dropped_bytes == 0
                             ? "clean"
                             : "torn: " + std::to_string(contents->dropped_bytes) +
                                   " bytes dropped (resume re-runs them)"});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_journal_dump(const std::filesystem::path& path) {
  const auto contents = orchestrator::read_journal(path);
  if (!contents) {
    std::fprintf(stderr, "gras: cannot read journal '%s' (missing or damaged header)\n",
                 path.string().c_str());
    return 1;
  }
  // One line per record: index, outcome, cycles, then the canonical record
  // bytes (hex). The bytes are the current-version wire/journal codec
  // regardless of the file's on-disk version, so two campaigns compare with
  // `gras journal dump a | sort -n` vs the same for b — byte-exact.
  std::string line;
  char buf[orchestrator::kRecordBytes];
  for (const auto& rec : contents->records) {
    orchestrator::encode_record(rec, buf);
    line.clear();
    line += std::to_string(rec.index);
    line += '\t';
    line += fi::outcome_name(rec.outcome);
    line += '\t';
    line += std::to_string(rec.cycles);
    line += '\t';
    static const char* kHex = "0123456789abcdef";
    for (const char byte : buf) {
      const auto u = static_cast<unsigned char>(byte);
      line += kHex[u >> 4];
      line += kHex[u & 0xf];
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_stats(const std::filesystem::path& path) {
  // A journal starts with the GRASJRN1 magic; our trace files start with
  // '{' — dispatch on the first bytes rather than the file extension.
  char magic[8] = {};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in || !in.read(magic, sizeof magic)) {
      std::fprintf(stderr, "gras: cannot read '%s'\n", path.string().c_str());
      return 1;
    }
  }
  if (std::memcmp(magic, "GRASJRN1", 8) == 0) {
    const auto contents = orchestrator::read_journal(path);
    if (!contents) {
      std::fprintf(stderr, "gras: damaged journal '%s'\n", path.string().c_str());
      return 1;
    }
    const orchestrator::JournalHeader& h = contents->header;
    TextTable header({"Field", "Value"});
    header.add_row({"app", h.app});
    header.add_row({"kernel", h.kernel});
    header.add_row({"config", h.config});
    header.add_row({"target", h.target});
    header.add_row({"build", h.build.empty() ? "(pre-v3 journal)" : h.build});
    header.add_row({"version", std::to_string(contents->version)});
    header.add_row({"samples", std::to_string(h.samples)});
    header.add_row({"seed", std::to_string(h.seed)});
    header.add_row({"shard", std::to_string(h.shard_index) + "/" +
                                 std::to_string(h.shard_count)});
    header.add_row({"records", std::to_string(contents->records.size())});
    header.add_row({"dropped bytes", std::to_string(contents->dropped_bytes)});
    if (contents->early_stop_consumed) {
      header.add_row({"early stop", std::to_string(*contents->early_stop_consumed)});
    }
    std::printf("%s", header.render().c_str());

    campaign::CampaignResult r;
    for (const auto& rec : contents->records) {
      switch (rec.outcome) {
        case fi::Outcome::Masked: ++r.counts.masked; break;
        case fi::Outcome::SDC: ++r.counts.sdc; break;
        case fi::Outcome::Timeout: ++r.counts.timeout; break;
        case fi::Outcome::DUE: ++r.counts.due; break;
      }
      if (rec.control_path) ++r.control_path_masked;
      if (rec.injected) ++r.injected;
    }
    print_histogram(r);
    return 0;
  }
  const auto parsed = trace::read_file(path);
  if (!parsed) {
    std::fprintf(stderr, "gras: '%s' is neither a journal nor a gras trace\n",
                 path.string().c_str());
    return 1;
  }
  std::printf("%s", trace::render_stats(*parsed).c_str());
  return 0;
}

int cmd_merge(const std::vector<std::filesystem::path>& journals) {
  const auto merged = orchestrator::merge_shards(journals);
  const auto& h = merged.header;
  std::printf("%s / %s / %s: %llu samples (%llu injected) across %u shards%s\n",
              h.app.c_str(), h.kernel.c_str(), h.target.c_str(),
              static_cast<unsigned long long>(merged.result.counts.total()),
              static_cast<unsigned long long>(merged.result.injected),
              h.shard_count, merged.early_stopped ? " [early stop]" : "");
  print_histogram(merged.result);
  return 0;
}

int cmd_anatomy(const std::vector<std::filesystem::path>& journals) {
  const auto rows = analysis::anatomy_from_journals(journals);
  for (const auto& row : rows) {
    std::printf("%s", analysis::render_anatomy(row).c_str());
  }
  return 0;
}

/// One-line description of where a journaled/re-run fault landed.
std::string describe_fault(const fi::FaultRecord& f) {
  char buf[160];
  if (f.level == fi::FaultLevel::Microarch) {
    std::snprintf(buf, sizeof buf,
                  "%s %s sm %u site %llu bit %u width %u cycle %llu launch %u",
                  fi::fault_level_name(f.level), fi::structure_name(f.structure),
                  f.sm, static_cast<unsigned long long>(f.site), f.bit, f.width,
                  static_cast<unsigned long long>(f.trigger), f.launch);
  } else if (f.level == fi::FaultLevel::Software) {
    std::snprintf(buf, sizeof buf,
                  "%s %s sm %u cell %llu bit %u width %u instr %llu launch %u",
                  fi::fault_level_name(f.level), fi::svf_mode_name(f.mode), f.sm,
                  static_cast<unsigned long long>(f.site), f.bit, f.width,
                  static_cast<unsigned long long>(f.trigger), f.launch);
  } else {
    std::snprintf(buf, sizeof buf, "none (no fault landed)");
  }
  return buf;
}

int cmd_replay(const std::filesystem::path& journal, const std::string& sample,
               bool trace) {
  // <index> or <seed>:<index>; an explicit seed must match the journal's.
  std::uint64_t seed = 0;
  bool has_seed = false;
  const char* index_text = sample.c_str();
  const std::size_t colon = sample.find(':');
  char* end = nullptr;
  if (colon != std::string::npos) {
    seed = std::strtoull(sample.c_str(), &end, 10);
    if (end != sample.c_str() + colon) {
      std::fprintf(stderr, "gras: invalid sample spec '%s' (want [seed:]index)\n",
                   sample.c_str());
      return 2;
    }
    has_seed = true;
    index_text = sample.c_str() + colon + 1;
  }
  const std::uint64_t index = std::strtoull(index_text, &end, 10);
  if (end == index_text || *end != '\0') {
    std::fprintf(stderr, "gras: invalid sample spec '%s' (want [seed:]index)\n",
                 sample.c_str());
    return 2;
  }

  const auto r = orchestrator::replay_sample(journal, index);
  if (has_seed && seed != r.header.seed) {
    std::fprintf(stderr, "gras: journal has seed %llu, not %llu\n",
                 static_cast<unsigned long long>(r.header.seed),
                 static_cast<unsigned long long>(seed));
    return 2;
  }
  std::printf("%s / %s / %s seed %llu sample %llu (journal v%u)\n",
              r.header.app.c_str(), r.header.kernel.c_str(), r.header.target.c_str(),
              static_cast<unsigned long long>(r.header.seed),
              static_cast<unsigned long long>(index), r.journal_version);
  std::printf("journaled: %-7s %llu cycles\n", fi::outcome_name(r.journaled.outcome),
              static_cast<unsigned long long>(r.journaled.cycles));
  std::printf("re-run:    %-7s %llu cycles\n", fi::outcome_name(r.rerun.outcome),
              static_cast<unsigned long long>(r.rerun.cycles));
  if (trace) {
    std::printf("fault: %s\n", describe_fault(r.rerun.fault).c_str());
    if (r.rerun.outcome == fi::Outcome::SDC) {
      const auto& s = r.rerun.signature;
      std::printf("corruption: %llu/%llu words, %u buffers, extent %llu, "
                  "max rel err %.3g\n",
                  static_cast<unsigned long long>(s.words_mismatched),
                  static_cast<unsigned long long>(s.words_total),
                  s.buffers_affected,
                  static_cast<unsigned long long>(s.spatial_extent()),
                  s.max_rel_error);
      for (const auto& d : r.divergent) {
        std::printf("  word %llu: golden 0x%08x faulty 0x%08x\n",
                    static_cast<unsigned long long>(d.word), d.golden, d.faulty);
      }
    }
  }
  if (!r.matches()) {
    std::fprintf(stderr,
                 "gras: replay DIVERGED from journal (%s%s%s%s) — journal written "
                 "by a different build?\n",
                 r.outcome_match ? "" : "outcome ", r.cycles_match ? "" : "cycles ",
                 r.fault_match ? "" : "fault-site ",
                 r.signature_match ? "" : "signature");
    return 1;
  }
  std::printf("replay matches journal\n");
  return 0;
}

int cmd_reuse(const std::string& app_name, const std::string& kernel_name) {
  const auto app = workloads::make_benchmark(app_name);
  const isa::Kernel& k = app->kernel(kernel_name);
  std::printf("average downstream readers per register write: %.2f\n",
              analysis::average_reuse(k));
  // Show the site with the widest fault reach.
  std::size_t best_index = 0;
  std::uint8_t best_reg = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < k.code.size(); ++i) {
    if (!k.code[i].writes_gpr()) continue;
    const auto site = analysis::analyze_reuse(k, i, k.code[i].dst);
    if (site.affected.size() > best) {
      best = site.affected.size();
      best_index = i;
      best_reg = k.code[i].dst;
    }
  }
  if (best > 0) {
    const auto site = analysis::analyze_reuse(k, best_index, best_reg);
    std::printf("widest fault reach (%zu readers):\n%s", best,
                analysis::reuse_listing(k, site).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "--version" || cmd == "version") {
      std::printf("%s\n", build_summary().c_str());
      std::printf("%s\n", build_json().c_str());
      return 0;
    }
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "list") return cmd_list();
    if (cmd == "run" && argc == 3) return cmd_run(argv[2]);
    if (cmd == "disasm" && (argc == 3 || argc == 4)) {
      return cmd_disasm(argv[2], argc == 4 ? argv[3] : nullptr);
    }
    if (cmd == "asm" && argc == 3) return cmd_asm(argv[2]);
    if (cmd == "campaign" && argc >= 5) {
      // Optional positional sample count, then --flags.
      std::uint64_t n = 300;
      int flags_from = 5;
      if (argc >= 6 && argv[5][0] != '-') {
        char* end = nullptr;
        n = std::strtoull(argv[5], &end, 10);
        if (end == argv[5] || *end != '\0' || n == 0) {
          std::fprintf(stderr, "gras: invalid sample count '%s'\n", argv[5]);
          return 2;
        }
        flags_from = 6;
      }
      return cmd_campaign(argv[2], argv[3], argv[4], n,
                          parse_campaign_flags(argc, argv, flags_from));
    }
    if (cmd == "serve" && argc >= 5) {
      std::uint64_t n = 300;
      int flags_from = 5;
      if (argc >= 6 && argv[5][0] != '-') {
        char* end = nullptr;
        n = std::strtoull(argv[5], &end, 10);
        if (end == argv[5] || *end != '\0' || n == 0) {
          std::fprintf(stderr, "gras: invalid sample count '%s'\n", argv[5]);
          return 2;
        }
        flags_from = 6;
      }
      return cmd_serve(argv[2], argv[3], argv[4], n,
                       parse_serve_flags(argc, argv, flags_from));
    }
    if (cmd == "work" && argc >= 3) return cmd_work(argc, argv, 2);
    if (cmd == "fleet" && argc >= 3) return cmd_fleet(argc, argv, 2);
    if (cmd == "journal" && argc == 4) {
      const std::string sub = argv[2];
      if (sub == "info") return cmd_journal_info(argv[3]);
      if (sub == "dump") return cmd_journal_dump(argv[3]);
    }
    if (cmd == "merge" && argc >= 3) {
      std::vector<std::filesystem::path> journals;
      for (int i = 2; i < argc; ++i) journals.emplace_back(argv[i]);
      return cmd_merge(journals);
    }
    if (cmd == "anatomy" && argc >= 3) {
      std::vector<std::filesystem::path> journals;
      for (int i = 2; i < argc; ++i) journals.emplace_back(argv[i]);
      return cmd_anatomy(journals);
    }
    if (cmd == "replay" && (argc == 4 || (argc == 5 && !std::strcmp(argv[4], "--trace")))) {
      return cmd_replay(argv[2], argv[3], argc == 5);
    }
    if (cmd == "reuse" && argc == 4) return cmd_reuse(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gras: %s\n", e.what());
    return 1;
  }
  return usage();
}
