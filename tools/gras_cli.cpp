// gras — command-line front end to the library.
//
//   gras list                          benchmarks and their kernels
//   gras run <app>                     fault-free run + per-launch stats
//   gras disasm <app> [kernel]         disassemble kernels
//   gras asm <file.sasm>               assemble & validate a kernel file
//   gras campaign <app> <kernel> <target> [samples]
//                                      one fault-injection campaign
//   gras reuse <app> <kernel>          register-reuse summary (Fig. 12)
//
// Targets: RF SMEM L1D L1T L2 SVF SVF-LD SVF-SRC1 SVF-REUSE.
// Environment: GRAS_CONFIG, GRAS_SEED, GRAS_THREADS (see README).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/analysis/analysis.h"
#include "src/assembler/assembler.h"
#include "src/campaign/campaign.h"
#include "src/common/env.h"
#include "src/common/table.h"
#include "src/isa/disasm.h"
#include "src/workloads/workload.h"

namespace {

using namespace gras;

int usage() {
  std::fprintf(stderr,
               "usage: gras <command> [...]\n"
               "  list\n"
               "  run <app>\n"
               "  disasm <app> [kernel]\n"
               "  asm <file.sasm>\n"
               "  campaign <app> <kernel> <target> [samples]\n"
               "  reuse <app> <kernel>\n"
               "apps: ");
  for (const auto& name : workloads::benchmark_names()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

sim::GpuConfig config() { return sim::make_config(env_config()); }

int cmd_list() {
  TextTable table({"App", "Kernels", "Buffers", "Output bytes"});
  for (const auto& app : workloads::make_all_benchmarks()) {
    std::string kernels;
    for (const auto& k : app->kernels()) {
      if (!kernels.empty()) kernels += ", ";
      kernels += k.name;
    }
    std::uint64_t out_bytes = 0;
    for (const auto& b : app->buffers()) {
      if (b.is_output()) out_bytes += b.bytes;
    }
    table.add_row({app->name(), kernels, std::to_string(app->buffers().size()),
                   std::to_string(out_bytes)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_run(const std::string& app_name) {
  const auto app = workloads::make_benchmark(app_name);
  sim::Gpu gpu(config());
  const auto out = workloads::run_app(*app, gpu);
  std::printf("%s: %s, %llu total cycles, %zu launches\n", app_name.c_str(),
              out.completed() ? "completed" : sim::trap_name(out.trap),
              static_cast<unsigned long long>(gpu.cycle()), gpu.launches().size());
  TextTable table({"#", "Kernel", "Grid", "Block", "Cycles", "WarpInstr", "L1D acc",
                   "L1D miss%", "L2 acc", "Occupancy%"});
  std::size_t i = 0;
  for (const auto& l : gpu.launches()) {
    const auto dim = [](sim::Dim3 d) {
      std::string s = std::to_string(d.x);
      if (d.y > 1 || d.z > 1) s += "x" + std::to_string(d.y);
      if (d.z > 1) s += "x" + std::to_string(d.z);
      return s;
    };
    table.add_row({std::to_string(++i), l.kernel, dim(l.grid), dim(l.block),
                   std::to_string(l.cycles()), std::to_string(l.stats.warp_instrs),
                   std::to_string(l.stats.l1d.accesses),
                   TextTable::pct(l.stats.l1d.miss_rate(), 1),
                   std::to_string(l.stats.l2.accesses),
                   TextTable::pct(l.stats.occupancy(gpu.config().max_warps_per_sm), 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_disasm(const std::string& app_name, const char* kernel) {
  const auto app = workloads::make_benchmark(app_name);
  for (const auto& k : app->kernels()) {
    if (kernel != nullptr && k.name != kernel) continue;
    std::printf("%s\n", isa::disassemble(k).c_str());
  }
  return 0;
}

int cmd_asm(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gras: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const auto kernels = assembler::assemble(text.str());
    for (const auto& k : kernels) {
      std::printf("%s: %zu instructions, %d regs/thread, %u B smem, %zu params\n",
                  k.name.c_str(), k.code.size(), k.num_regs, k.smem_bytes,
                  k.params.size());
    }
    std::printf("OK\n");
    return 0;
  } catch (const assembler::AsmError& e) {
    std::fprintf(stderr, "gras: %s\n", e.what());
    return 1;
  }
}

campaign::Target parse_target(const std::string& s) {
  if (s == "RF") return campaign::Target::RF;
  if (s == "SMEM") return campaign::Target::SMEM;
  if (s == "L1D") return campaign::Target::L1D;
  if (s == "L1T") return campaign::Target::L1T;
  if (s == "L2") return campaign::Target::L2;
  if (s == "SVF") return campaign::Target::Svf;
  if (s == "SVF-LD") return campaign::Target::SvfLd;
  if (s == "SVF-SRC1") return campaign::Target::SvfSrcOnce;
  if (s == "SVF-REUSE") return campaign::Target::SvfSrcReuse;
  throw std::invalid_argument("unknown target '" + s + "'");
}

int cmd_campaign(const std::string& app_name, const std::string& kernel,
                 const std::string& target, std::uint64_t samples) {
  const auto app = workloads::make_benchmark(app_name);
  const auto cfg = config();
  const auto golden = campaign::run_golden(*app, cfg);
  ThreadPool pool(static_cast<std::size_t>(env_threads()));
  campaign::CampaignSpec spec;
  spec.kernel = kernel;
  spec.target = parse_target(target);
  spec.samples = samples;
  spec.seed = env_seed();
  const auto r = campaign::run_campaign(*app, cfg, golden, spec, pool);
  const auto ci = r.fr_ci();
  std::printf("%s / %s / %s: %llu samples (%llu injected)\n", app_name.c_str(),
              kernel.c_str(), target.c_str(),
              static_cast<unsigned long long>(r.counts.total()),
              static_cast<unsigned long long>(r.injected));
  TextTable table({"Outcome", "Count", "%"});
  table.add_row({"Masked", std::to_string(r.counts.masked),
                 TextTable::pct(r.counts.pct(fi::Outcome::Masked))});
  table.add_row({"SDC", std::to_string(r.counts.sdc),
                 TextTable::pct(r.counts.pct(fi::Outcome::SDC))});
  table.add_row({"Timeout", std::to_string(r.counts.timeout),
                 TextTable::pct(r.counts.pct(fi::Outcome::Timeout))});
  table.add_row({"DUE", std::to_string(r.counts.due),
                 TextTable::pct(r.counts.pct(fi::Outcome::DUE))});
  std::printf("%s", table.render().c_str());
  std::printf("FR = %s%%  99%% CI [%s%%, %s%%]  control-path masked = %llu\n",
              TextTable::pct(r.counts.failure_rate()).c_str(),
              TextTable::pct(ci.lower).c_str(), TextTable::pct(ci.upper).c_str(),
              static_cast<unsigned long long>(r.control_path_masked));
  return 0;
}

int cmd_reuse(const std::string& app_name, const std::string& kernel_name) {
  const auto app = workloads::make_benchmark(app_name);
  const isa::Kernel& k = app->kernel(kernel_name);
  std::printf("average downstream readers per register write: %.2f\n",
              analysis::average_reuse(k));
  // Show the site with the widest fault reach.
  std::size_t best_index = 0;
  std::uint8_t best_reg = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < k.code.size(); ++i) {
    if (!k.code[i].writes_gpr()) continue;
    const auto site = analysis::analyze_reuse(k, i, k.code[i].dst);
    if (site.affected.size() > best) {
      best = site.affected.size();
      best_index = i;
      best_reg = k.code[i].dst;
    }
  }
  if (best > 0) {
    const auto site = analysis::analyze_reuse(k, best_index, best_reg);
    std::printf("widest fault reach (%zu readers):\n%s", best,
                analysis::reuse_listing(k, site).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "run" && argc == 3) return cmd_run(argv[2]);
    if (cmd == "disasm" && (argc == 3 || argc == 4)) {
      return cmd_disasm(argv[2], argc == 4 ? argv[3] : nullptr);
    }
    if (cmd == "asm" && argc == 3) return cmd_asm(argv[2]);
    if (cmd == "campaign" && (argc == 5 || argc == 6)) {
      const std::uint64_t n = argc == 6 ? std::strtoull(argv[5], nullptr, 10) : 300;
      return cmd_campaign(argv[2], argv[3], argv[4], n);
    }
    if (cmd == "reuse" && argc == 4) return cmd_reuse(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gras: %s\n", e.what());
    return 1;
  }
  return usage();
}
