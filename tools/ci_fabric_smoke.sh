#!/usr/bin/env bash
# Distributed campaign fabric smoke test (CI):
#   1. run a single-process --batch 1 campaign to completion (reference),
#   2. serve the same campaign to 3 workers, observe the live fleet through
#      `gras fleet --json` and a /metrics scrape (validated by
#      check_promtext.py), SIGKILL one worker mid-lease, SIGKILL the
#      coordinator partway, restart the coordinator once on the same port
#      (surviving workers reconnect and finish),
#   3. require the served journal to be byte-identical (as a sorted record
#      dump) to the reference, and the histograms to match — proving the
#      observability plane never touched the campaign's behavior.
#
# Usage: ci_fabric_smoke.sh [path-to-gras-binary]
set -u

GRAS=$(cd "$(dirname "${1:-build/tools/gras}")" && pwd)/$(basename "${1:-build/tools/gras}")
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT
export GRAS_THREADS=2   # slow the workers down so the kills land mid-run

# 1200 samples keeps the distributed run alive (~7s at 3 workers) through
# the fleet/metrics observation steps AND both SIGKILLs that follow.
APP=hotspot KERNEL=hotspot_k1 TARGET=RF SAMPLES=1200

histogram() { grep -E 'Masked|SDC|Timeout|DUE|FR =' "$1"; }

fail() { echo "ci_fabric_smoke: $*" >&2; exit 1; }

wait_port() {
    # Polls the coordinator's port file; prints the port.
    for _ in $(seq 1 200); do
        if [ -s "$1" ]; then cat "$1"; return 0; fi
        sleep 0.05
    done
    return 1
}

echo "== single-process --batch 1 reference =="
"$GRAS" campaign "$APP" "$KERNEL" "$TARGET" "$SAMPLES" --batch 1 \
    --journal "$WORK/ref.jrnl" > "$WORK/ref.txt" || fail "reference run failed"
histogram "$WORK/ref.txt"

echo "== coordinator + 3 workers, one worker SIGKILLed mid-lease =="
"$GRAS" serve "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
    --listen 127.0.0.1:0 --port-file "$WORK/port.txt" \
    --journal "$WORK/served.jrnl" --lease 16 --lease-ttl 3 \
    --heartbeat-sec 0.5 \
    --metrics-port 0 --metrics-port-file "$WORK/mport.txt" \
    > "$WORK/serve1.txt" 2>&1 &
serve_pid=$!
PORT=$(wait_port "$WORK/port.txt") || fail "coordinator never wrote its port file"
echo "coordinator on port $PORT (pid $serve_pid)"

worker_pids=()
for i in 0 1 2; do
    "$GRAS" work --connect "127.0.0.1:$PORT" --name "smoke-w$i" \
        --retry-sec 60 > "$WORK/worker$i.txt" 2>&1 &
    worker_pids+=($!)
done

echo "== gras fleet --json must show 3 live workers with throughput =="
fleet_live() {
    # Succeeds once the fleet status shows 3 connected workers and a
    # nonzero per-worker throughput (needs two stats reports per worker).
    "$GRAS" fleet "127.0.0.1:$PORT" --json > "$WORK/fleet.json" 2>/dev/null \
        || return 1
    python3 - "$WORK/fleet.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
live = [w for w in s["workers"] if w["connected"]]
ok = len(live) >= 3 and any(w["samples_per_sec"] > 0 for w in live)
sys.exit(0 if ok else 1)
EOF
}
fleet_ok=0
for _ in $(seq 1 100); do
    if fleet_live; then fleet_ok=1; break; fi
    sleep 0.2
done
[ "$fleet_ok" = 1 ] || fail "fleet status never showed 3 live workers with throughput: $(cat "$WORK/fleet.json" 2>/dev/null)"
echo "fleet: $(cat "$WORK/fleet.json")"

echo "== scrape /metrics mid-campaign and validate the exposition =="
MPORT=$(wait_port "$WORK/mport.txt") || fail "coordinator never wrote its metrics port file"
python3 - "$MPORT" "$WORK/metrics.txt" <<'EOF' || fail "/metrics scrape failed"
import sys, urllib.request
body = urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10).read()
open(sys.argv[2], "wb").write(body)
EOF
python3 "$(dirname "$0")/check_promtext.py" "$WORK/metrics.txt" \
    gras_fleet_samples_committed \
    gras_fleet_samples_per_sec \
    gras_fleet_workers \
    gras_fleet_worker_samples_per_sec \
    gras_fabric_records_received_total \
    gras_metrics_scrapes_total \
    || fail "mid-campaign /metrics scrape failed validation"

kill -9 "${worker_pids[2]}" 2>/dev/null
wait "${worker_pids[2]}" 2>/dev/null
echo "worker smoke-w2 SIGKILLed; its lease must be reassigned"

echo "== SIGKILL the coordinator, restart it once on the same port =="
# Wait until the canonical journal holds committed records, so the restart
# genuinely replays (a kill before the first commit would resume nothing).
for _ in $(seq 1 600); do
    size=$(stat -c %s "$WORK/served.jrnl" 2>/dev/null || echo 0)
    [ "$size" -gt 4096 ] && break
    sleep 0.1
done
kill -9 "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null
echo "coordinator SIGKILLed; restarting with --resume"
"$GRAS" serve "$APP" "$KERNEL" "$TARGET" "$SAMPLES" \
    --listen "127.0.0.1:$PORT" --port-file "$WORK/port.txt" \
    --journal "$WORK/served.jrnl" --resume --lease 16 --lease-ttl 3 \
    --heartbeat-sec 0.5 \
    --metrics-port 0 --metrics-port-file "$WORK/mport2.txt" \
    > "$WORK/serve2.txt" 2>&1 &
serve_pid=$!

wait "$serve_pid" || fail "restarted coordinator failed: $(cat "$WORK/serve2.txt")"
for i in 0 1; do
    wait "${worker_pids[$i]}" \
        || fail "worker $i failed: $(cat "$WORK/worker$i.txt")"
done
histogram "$WORK/serve2.txt" || fail "restarted coordinator printed no histogram"
grep "resumed:" "$WORK/serve2.txt" \
    || fail "restarted coordinator did not replay the journal"

echo "== byte-compare the served journal against the reference =="
"$GRAS" journal dump "$WORK/ref.jrnl" | sort > "$WORK/ref.dump" \
    || fail "journal dump (reference) failed"
"$GRAS" journal dump "$WORK/served.jrnl" | sort > "$WORK/served.dump" \
    || fail "journal dump (served) failed"
[ -s "$WORK/ref.dump" ] || fail "reference dump is empty"
diff "$WORK/ref.dump" "$WORK/served.dump" \
    || fail "served journal differs from the single-process reference"
diff <(histogram "$WORK/ref.txt") <(histogram "$WORK/serve2.txt") \
    || fail "served histogram differs from the single-process reference"
echo "distributed campaign is bit-identical to the single-process run"

"$GRAS" journal info "$WORK/served.jrnl" || fail "journal info failed"

echo "ci_fabric_smoke: OK"
