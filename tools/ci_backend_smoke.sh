#!/usr/bin/env bash
# Execution-backend A/B smoke test (CI): the same reduced fig01 sweep, run
# once with the fast functional prefix backend (GRAS_BACKEND=functional,
# with handoff memory-image validation on) and once pure-timing, must leave
# byte-identical campaign results on disk — outcome counts, fault records,
# corruption signatures. This is the campaign-level equivalence contract of
# DESIGN.md §11, checked end to end through the CLI cache.
#
# Usage: ci_backend_smoke.sh [path-to-fig01-binary]
set -u

FIG01=${1:-build/bench/fig01_app_avf_svf}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "ci_backend_smoke: $*" >&2; exit 1; }

echo "== functional-prefix sweep (validated handoffs) =="
GRAS_BACKEND=functional GRAS_FUNC_VALIDATE=1 GRAS_CACHE="$WORK/func_cache" \
    GRAS_INJECTIONS=20 "$FIG01" || fail "functional sweep failed"

echo "== pure-timing sweep =="
GRAS_BACKEND=timing GRAS_CACHE="$WORK/timing_cache" \
    GRAS_INJECTIONS=20 "$FIG01" || fail "timing sweep failed"

echo "== A/B diff =="
diff -r "$WORK/func_cache" "$WORK/timing_cache" || fail "backends diverged"
echo "backend A/B byte-identical"
