#!/usr/bin/env python3
"""Validates a gras trace file (Chrome trace-event JSON).

Checks that the file parses as JSON, that every event carries the uniform
ph/ts/pid/tid/name envelope, and that each thread's "X" spans nest properly
(a child is fully contained in its parent — overlapping siblings would
render as garbage in Perfetto and break self-time attribution).

Usage: check_trace.py <trace.json>
Exit status: 0 valid, 1 invalid, 2 usage.
"""

import json
import sys

# "X" timestamps are microseconds with 3 decimals; one representable step.
EPS_US = 0.001


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)

    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"not readable JSON: {e}")

    if trace.get("displayTimeUnit") != "ns":
        fail("missing displayTimeUnit")
    other = trace.get("otherData")
    if not isinstance(other, dict) or "build" not in other or "dropped" not in other:
        fail("otherData must carry build and dropped")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents must be a list")

    spans_by_tid = {}
    counters = 0
    threads = set()
    for i, e in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in e:
                fail(f"event {i} lacks '{key}': {e}")
        ph = e["ph"]
        if ph == "M":
            if e["name"] == "thread_name":
                if not e.get("args", {}).get("name"):
                    fail(f"thread_name metadata without a label: {e}")
                threads.add(e["tid"])
        elif ph == "X":
            if "dur" not in e or e["dur"] < 0 or "cat" not in e:
                fail(f"X event {i} needs a non-negative dur and a cat: {e}")
            spans_by_tid.setdefault(e["tid"], []).append(e)
        elif ph == "C":
            if "value" not in e.get("args", {}):
                fail(f"C event {i} lacks args.value: {e}")
            counters += 1
        else:
            fail(f"event {i} has unknown ph '{ph}'")

    nspans = 0
    for tid, spans in sorted(spans_by_tid.items()):
        if tid not in threads:
            fail(f"tid {tid} has spans but no thread_name metadata")
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (name, start, end) of open ancestors
        for e in spans:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][2] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1][2] + EPS_US:
                fail(
                    f"tid {tid}: '{e['name']}' [{start}, {end}] overlaps "
                    f"'{stack[-1][0]}' [{stack[-1][1]}, {stack[-1][2]}] "
                    "without nesting inside it"
                )
            stack.append((e["name"], start, end))
            nspans += 1

    print(
        f"check_trace: OK — {nspans} spans on {len(spans_by_tid)} threads, "
        f"{counters} counters, build '{other['build']}', "
        f"{other['dropped']} dropped"
    )


if __name__ == "__main__":
    main()
