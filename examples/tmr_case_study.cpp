// TMR case study (paper §IV): harden one benchmark with thread-level
// triple modular redundancy and measure what protection actually buys —
// at both the software level (SVF) and the cross-layer level (AVF-RF).
//
//   $ ./tmr_case_study [app] [samples]
//
// Things to observe (the paper's Insight #5):
//  * execution time roughly triples;
//  * the software-level view says SDCs are (almost) eliminated;
//  * DUEs increase — sometimes enough to make the hardened kernel *more*
//    vulnerable overall;
//  * for apps whose host logic consumes device data between kernels
//    (srad_v1, backprop, bfs, kmeans), some SDCs survive even under TMR:
//    the host path is not triplicated, so a corrupted copy-0 intermediate
//    becomes a common-mode input to all three copies.
#include <cstdio>
#include <cstdlib>

#include "src/campaign/campaign.h"
#include "src/common/env.h"
#include "src/common/table.h"
#include "src/harden/tmr.h"
#include "src/isa/disasm.h"
#include "src/workloads/workload.h"

int main(int argc, char** argv) {
  using namespace gras;
  const std::string app_name = argc > 1 ? argv[1] : "backprop";
  const std::uint64_t samples = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  const auto config = sim::make_config(env_config());
  const auto base = workloads::make_benchmark(app_name);
  const auto tmr = harden::harden(*base);
  ThreadPool pool(static_cast<std::size_t>(env_threads()));

  const auto golden_base = campaign::run_golden(*base, config);
  const auto golden_tmr = campaign::run_golden(*tmr, config);

  std::printf("TMR case study: %s\n", app_name.c_str());
  std::printf("golden cycles: %llu -> %llu under TMR (x%.2f overhead)\n",
              static_cast<unsigned long long>(golden_base.total_cycles),
              static_cast<unsigned long long>(golden_tmr.total_cycles),
              static_cast<double>(golden_tmr.total_cycles) /
                  static_cast<double>(golden_base.total_cycles));
  std::printf("copy stride: %u bytes; every buffer triplicated\n\n", tmr->copy_stride());

  // Show what the transform did to the first kernel.
  const isa::Kernel& original = base->kernels().front();
  const isa::Kernel& hardened = tmr->kernels().front();
  std::printf("kernel '%s': %zu -> %zu instructions, %d -> %d registers/thread\n",
              original.name.c_str(), original.code.size(), hardened.code.size(),
              original.num_regs, hardened.num_regs);
  std::printf("injected prologue:\n");
  const std::size_t prologue = hardened.code.size() - original.code.size();
  for (std::size_t i = 0; i < prologue; ++i) {
    std::printf("    %s\n", isa::disassemble(hardened.code[i], &hardened).c_str());
  }
  std::printf("\n");

  TextTable table({"Kernel", "Layer", "Masked w/o", "SDC w/o", "T/O w/o", "DUE w/o",
                   "Masked w/", "SDC w/", "T/O w/", "DUE w/"});
  for (const std::string& kernel : golden_base.kernel_names()) {
    for (const auto target : {campaign::Target::Svf, campaign::Target::RF}) {
      campaign::CampaignSpec spec;
      spec.kernel = kernel;
      spec.target = target;
      spec.samples = samples;
      spec.seed = env_seed();
      const auto before = campaign::run_campaign(*base, config, golden_base, spec, pool);
      const auto after = campaign::run_campaign(*tmr, config, golden_tmr, spec, pool);
      const auto row = [&](const campaign::OutcomeCounts& c, std::vector<std::string>& v) {
        v.push_back(TextTable::pct(c.pct(fi::Outcome::Masked)));
        v.push_back(TextTable::pct(c.pct(fi::Outcome::SDC)));
        v.push_back(TextTable::pct(c.pct(fi::Outcome::Timeout)));
        v.push_back(TextTable::pct(c.pct(fi::Outcome::DUE)));
      };
      std::vector<std::string> cells = {kernel, campaign::target_name(target)};
      row(before.counts, cells);
      row(after.counts, cells);
      table.add_row(std::move(cells));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("All values are %% of %llu injections per campaign.\n",
              static_cast<unsigned long long>(samples));
  return 0;
}
