// Budgeted protection (paper §III-A): given the budget to protect only a
// few applications, which ones deserve it? The paper's warning: the
// software-level ranking (SVF) and the cross-layer ranking (AVF) disagree —
// a designer trusting SVF would fortify the wrong applications, wasting the
// protection budget and potentially *increasing* overall vulnerability.
//
//   $ ./budgeted_protection [samples]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/orchestrator/cache.h"
#include "src/campaign/campaign.h"
#include "src/common/env.h"
#include "src/common/table.h"
#include "src/metrics/metrics.h"
#include "src/workloads/workload.h"

int main(int argc, char** argv) {
  using namespace gras;
  const std::uint64_t samples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const auto config = sim::make_config(env_config());
  const auto bits = metrics::StructureBits::from(config);
  ThreadPool pool(static_cast<std::size_t>(env_threads()));

  std::printf("Budgeted protection: ranking the suite by SVF vs by cross-layer AVF\n");
  std::printf("samples/campaign=%llu\n\n", static_cast<unsigned long long>(samples));

  std::vector<campaign::Target> targets(std::begin(campaign::kMicroarchTargets),
                                        std::end(campaign::kMicroarchTargets));
  targets.push_back(campaign::Target::Svf);

  struct Entry {
    std::string name;
    double avf, svf, avf_sdc, svf_sdc;
  };
  std::vector<Entry> entries;
  for (auto& app : workloads::make_all_benchmarks()) {
    const auto golden = campaign::run_golden(*app, config);
    metrics::AppReliability rel;
    for (const std::string& kernel : golden.kernel_names()) {
      const auto campaigns = orchestrator::cached_kernel_sweep(
          *app, config, golden, kernel, targets, samples, env_seed(), pool);
      rel.kernels.push_back(metrics::consolidate_kernel(golden, kernel, campaigns, config));
    }
    const auto avf = rel.chip_avf(bits);
    const auto svf = rel.svf();
    entries.push_back({app->name(), avf.value(), svf.value(), avf.sdc, svf.sdc});
  }

  auto by_svf = entries;
  std::sort(by_svf.begin(), by_svf.end(),
            [](const Entry& a, const Entry& b) { return a.svf > b.svf; });
  auto by_avf = entries;
  std::sort(by_avf.begin(), by_avf.end(),
            [](const Entry& a, const Entry& b) { return a.avf > b.avf; });

  TextTable table({"Rank", "by SVF (software view)", "SVF %", "by AVF (ground truth)",
                   "AVF %"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    table.add_row({std::to_string(i + 1), by_svf[i].name,
                   TextTable::pct(by_svf[i].svf), by_avf[i].name,
                   TextTable::pct(by_avf[i].avf)});
  }
  std::printf("%s\n", table.render().c_str());

  // Would an SVF-guided budget of 3 protect the right apps?
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      overlap += by_svf[i].name == by_avf[j].name;
    }
  }
  std::printf("Top-3 protection sets overlap in %zu of 3 apps.\n", overlap);
  std::printf("An SVF-guided budget fortifies {%s, %s, %s};\n",
              by_svf[0].name.c_str(), by_svf[1].name.c_str(), by_svf[2].name.c_str());
  std::printf("the cross-layer ground truth says {%s, %s, %s}.\n",
              by_avf[0].name.c_str(), by_avf[1].name.c_str(), by_avf[2].name.c_str());
  return 0;
}
