// Quickstart: write a kernel in the gras mini-ISA, run it on the simulated
// GPU, inject one fault, and classify the outcome.
//
//   $ ./quickstart
//
// This walks the whole public API surface in ~100 lines:
//   assembler::assemble_kernel  -> isa::Kernel
//   sim::Gpu                    -> malloc / memcpy / launch
//   fi::MicroarchInjector       -> one single-bit register-file fault
#include <cstdio>
#include <vector>

#include "src/assembler/assembler.h"
#include "src/common/rng.h"
#include "src/fi/injectors.h"
#include "src/sim/config.h"
#include "src/sim/gpu.h"

namespace {

// SAXPY: y[i] = a*x[i] + y[i]. The syntax is SASS-flavoured; see
// src/assembler/assembler.h for the full grammar.
constexpr char kSaxpy[] = R"(
.kernel saxpy
.param x ptr
.param y ptr
.param a f32
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2          // global index
    ISETP.GE P0, R3, c[n]
    @P0 EXIT                     // bounds guard
    ISCADD R4, R3, c[x], 2
    LDG R5, [R4]
    ISCADD R6, R3, c[y], 2
    LDG R7, [R6]
    MOV R8, c[a]
    FFMA R9, R8, R5, R7          // a*x + y
    STG [R6], R9
    EXIT
)";

std::uint32_t fbits(float f) {
  std::uint32_t b;
  __builtin_memcpy(&b, &f, 4);
  return b;
}

}  // namespace

int main() {
  using namespace gras;

  // 1. Assemble the kernel.
  const isa::Kernel kernel = assembler::assemble_kernel(kSaxpy);
  std::printf("assembled '%s': %zu instructions, %d registers/thread\n",
              kernel.name.c_str(), kernel.code.size(), kernel.num_regs);

  // 2. Set up the device and data.
  constexpr std::uint32_t kN = 1024;
  sim::Gpu gpu(sim::make_config("gv100-scaled"));
  std::vector<float> x(kN), y(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    x[i] = static_cast<float>(i);
    y[i] = 1.0f;
  }
  const std::uint32_t dx = gpu.malloc(kN * 4);
  const std::uint32_t dy = gpu.malloc(kN * 4);
  gpu.memcpy_h2d(dx, x.data(), kN * 4);
  gpu.memcpy_h2d(dy, y.data(), kN * 4);

  // 3. Launch (grid of 4 CTAs x 256 threads) and read back.
  const sim::LaunchResult r =
      gpu.launch(kernel, {kN / 256, 1, 1}, {256, 1, 1}, {dx, dy, fbits(2.0f), kN});
  std::vector<float> golden(kN);
  gpu.memcpy_d2h(golden.data(), dy, kN * 4);
  std::printf("fault-free run: %s, %llu cycles, %llu warp instructions\n",
              sim::trap_name(r.trap), static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.instructions));
  std::printf("  y[1] = %.1f (expect 3.0), y[1000] = %.1f (expect 2001.0)\n",
              golden[1], golden[1000]);
  const auto& stats = gpu.launches()[0].stats;
  std::printf("  L1D: %llu accesses, %.1f%% miss rate; DRAM read %llu bytes\n",
              static_cast<unsigned long long>(stats.l1d.accesses),
              stats.l1d.miss_rate() * 100.0,
              static_cast<unsigned long long>(stats.dram_read_bytes));

  // 4. Same launch with one microarchitecture-level fault: a single bit of
  // the register file flips at cycle 500.
  sim::Gpu faulty_gpu(sim::make_config("gv100-scaled"));
  const std::uint32_t fx = faulty_gpu.malloc(kN * 4);
  const std::uint32_t fy = faulty_gpu.malloc(kN * 4);
  faulty_gpu.memcpy_h2d(fx, x.data(), kN * 4);
  faulty_gpu.memcpy_h2d(fy, y.data(), kN * 4);
  fi::MicroarchInjector injector(fi::Structure::RF, /*trigger=*/500,
                                 /*window_end=*/1u << 30, Rng(7));
  faulty_gpu.set_fault_hook(&injector);
  const sim::LaunchResult rf =
      faulty_gpu.launch(kernel, {kN / 256, 1, 1}, {256, 1, 1}, {fx, fy, fbits(2.0f), kN});

  // 5. Classify: Masked / SDC / DUE (Timeout would be a watchdog trap).
  std::vector<float> faulty(kN);
  faulty_gpu.memcpy_d2h(faulty.data(), fy, kN * 4);
  const char* outcome = "Masked";
  if (rf.trap == sim::TrapKind::Watchdog) outcome = "Timeout";
  else if (rf.trap != sim::TrapKind::None) outcome = "DUE";
  else if (faulty != golden) outcome = "SDC";
  std::printf("fault at cycle 500 in the register file -> %s\n", outcome);
  if (outcome == std::string("SDC")) {
    for (std::uint32_t i = 0; i < kN; ++i) {
      if (faulty[i] != golden[i]) {
        std::printf("  first corrupted element: y[%u] = %g (expected %g)\n", i,
                    faulty[i], golden[i]);
        break;
      }
    }
  }
  return 0;
}
